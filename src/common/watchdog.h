// Stall watchdog for long-lived worker threads.
//
// A partition-as-a-service process has two background threads whose death
// is already survivable (the prefetch worker degrades to synchronous
// reads, the checkpoint writer can be bypassed with in-band commits) but
// whose *hang* — a write stuck on a broken NFS mount, an fsync wedged
// behind a dying disk — previously blocked the partitioning thread
// forever. The watchdog turns a hang into the same degradation path a
// death takes: each watched thread owns a heartbeat Handle and beats it
// whenever it makes progress; when an armed handle goes quiet past the
// deadline, the watchdog fires that handle's on_stall callback exactly
// once per stall episode (a later beat re-arms it).
//
// Design constraints, in order:
//  - The beat is wait-free: one relaxed atomic store. Watched threads
//    never block on watchdog state, so arming the watchdog costs nothing
//    on the happy path (the checkpoint-tax bench guardrail runs armed).
//  - Deterministic in tests: an injectable clock plus poll() lets a test
//    advance a FakeClock and step detection manually; production passes
//    Options{.poll_interval=...} and start() spawns a polling thread.
//  - on_stall runs on the polling thread (or inside poll()) while the
//    watchdog mutex is held, so detach() can guarantee the callback is
//    not mid-flight afterwards. Callbacks must therefore be small, must
//    not throw and must not call back into the watchdog.
//
// A stalled thread is NOT killed — there is no safe way to destroy a
// thread stuck in a syscall. The callback's job is to flip the sticky
// flags the degradation paths already understand ("stop waiting for the
// writer", "stop scheduling prefetches") and bump watchdog.stalls.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "src/common/clock.h"

namespace adwise {

class Watchdog {
 public:
  struct Options {
    // An armed handle with no beat for longer than this is stalled.
    std::chrono::nanoseconds stall_timeout = std::chrono::seconds(10);
    // Cadence of the background polling thread started by start().
    std::chrono::nanoseconds poll_interval = std::chrono::seconds(1);
    // Time source; null = the process steady clock. Tests pass FakeClock
    // and call poll() themselves instead of start().
    const Clock* clock = nullptr;
  };

  // Heartbeat handle owned by the Watchdog; watched threads keep a
  // pointer. beat()/arm()/disarm() are safe from any thread.
  class Handle {
   public:
    // Records liveness and ends any current stall episode.
    void beat() noexcept {
      last_beat_ns_.store(owner_->now_ns(), std::memory_order_relaxed);
      stalled_.store(false, std::memory_order_relaxed);
    }
    // Only armed handles can stall: arm around in-flight work, disarm
    // when idle so a quiet-but-healthy thread is never flagged.
    void arm() noexcept {
      beat();
      armed_.store(true, std::memory_order_release);
    }
    void disarm() noexcept { armed_.store(false, std::memory_order_release); }
    // Sticky per-episode flag, cleared by the next beat()/arm().
    [[nodiscard]] bool stalled() const noexcept {
      return stalled_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    // Clears the on_stall callback and blocks until any in-flight
    // invocation finished — after this the callback's captures may die.
    // Call from the watched object's destructor.
    void detach() {
      std::lock_guard<std::mutex> lock(owner_->mu_);
      on_stall_ = nullptr;
      armed_.store(false, std::memory_order_release);
    }

   private:
    friend class Watchdog;
    Handle(Watchdog* owner, std::string name,
           std::function<void()> on_stall)
        : owner_(owner), name_(std::move(name)),
          on_stall_(std::move(on_stall)) {
      last_beat_ns_.store(owner_->now_ns(), std::memory_order_relaxed);
    }

    Watchdog* owner_;
    std::string name_;
    std::function<void()> on_stall_;  // guarded by owner_->mu_
    std::atomic<std::int64_t> last_beat_ns_{0};
    std::atomic<bool> armed_{false};
    std::atomic<bool> stalled_{false};
  };

  Watchdog() : Watchdog(Options()) {}
  explicit Watchdog(Options options) : options_(options) {}

  ~Watchdog() { stop(); }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Registers a heartbeat handle. The handle lives as long as the
  // watchdog; on_stall fires at most once per stall episode. The watched
  // object must detach() before its callback captures become invalid.
  Handle& watch(std::string name, std::function<void()> on_stall) {
    std::lock_guard<std::mutex> lock(mu_);
    handles_.emplace_back(
        new Handle(this, std::move(name), std::move(on_stall)));
    return *handles_.back();
  }

  // One detection sweep: flags every armed handle whose last beat is
  // older than the stall timeout and fires its callback. Tests drive this
  // directly against a FakeClock; start() drives it periodically.
  void poll() {
    const std::int64_t now = now_ns();
    const std::int64_t timeout = options_.stall_timeout.count();
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& h : handles_) {
      if (!h->armed_.load(std::memory_order_acquire)) continue;
      if (h->stalled_.load(std::memory_order_relaxed)) continue;
      if (now - h->last_beat_ns_.load(std::memory_order_relaxed) < timeout) {
        continue;
      }
      h->stalled_.store(true, std::memory_order_relaxed);
      if (h->on_stall_) h->on_stall_();
    }
  }

  // Spawns the background polling thread (idempotent).
  void start() {
    std::lock_guard<std::mutex> lock(mu_);
    if (thread_.joinable()) return;
    stop_ = false;
    thread_ = std::thread([this] { run(); });
  }

  // Stops and joins the polling thread (idempotent; called by ~Watchdog).
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!thread_.joinable()) return;
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  [[nodiscard]] std::int64_t now_ns() const {
    return options_.clock != nullptr ? options_.clock->now().count()
                                     : monotonic_now_ns();
  }

  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      // Real-time wait on purpose: a FakeClock user drives poll() by
      // hand, so the polling thread only ever pairs with the real clock.
      cv_.wait_for(lock, options_.poll_interval, [this] { return stop_; });
      if (stop_) return;
      lock.unlock();
      poll();
      lock.lock();
    }
  }

  Options options_;
  std::mutex mu_;
  std::condition_variable cv_;
  // deque of pointers: handles never move, so watched threads can hold
  // Handle* across watch() calls by other threads.
  std::deque<std::unique_ptr<Handle>> handles_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace adwise
