// Compact set of partition (or machine) ids.
//
// The vertex cache of every streaming partitioner stores one replica set per
// vertex (paper §II, Table I: R_u ⊆ P). Partition counts in the paper's
// experiments are small (k = 32), so the common case is a single inline
// 64-bit word; larger k spills to heap words. The set is append-only in
// practice (replicas are never removed during streaming), but erase is
// provided for completeness.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace adwise {

class ReplicaSet {
 public:
  ReplicaSet() = default;

  // Inserts id; returns true if it was newly inserted.
  bool insert(std::uint32_t id) {
    std::uint64_t& word = word_for(id);
    const std::uint64_t mask = bit_mask(id);
    if ((word & mask) != 0) return false;
    word |= mask;
    ++count_;
    return true;
  }

  // Removes id; returns true if it was present.
  bool erase(std::uint32_t id) {
    if (!contains(id)) return false;
    word_for(id) &= ~bit_mask(id);
    --count_;
    return true;
  }

  [[nodiscard]] bool contains(std::uint32_t id) const {
    if (id < 64) return (inline_word_ & bit_mask(id)) != 0;
    const std::size_t w = id / 64 - 1;
    return w < spill_.size() && (spill_[w] & bit_mask(id)) != 0;
  }

  [[nodiscard]] std::uint32_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  void clear() {
    inline_word_ = 0;
    spill_.clear();
    count_ = 0;
  }

  // Number of ids present in both sets.
  [[nodiscard]] std::uint32_t intersection_size(const ReplicaSet& other) const {
    std::uint32_t total = std::popcount(inline_word_ & other.inline_word_);
    const std::size_t n = std::min(spill_.size(), other.spill_.size());
    for (std::size_t i = 0; i < n; ++i) {
      total += std::popcount(spill_[i] & other.spill_[i]);
    }
    return total;
  }

  [[nodiscard]] bool intersects(const ReplicaSet& other) const {
    if ((inline_word_ & other.inline_word_) != 0) return true;
    const std::size_t n = std::min(spill_.size(), other.spill_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if ((spill_[i] & other.spill_[i]) != 0) return true;
    }
    return false;
  }

  // Calls fn(id) for every id in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    visit_word(inline_word_, 0, fn);
    for (std::size_t w = 0; w < spill_.size(); ++w) {
      visit_word(spill_[w], (w + 1) * 64, fn);
    }
  }

  // Smallest id in the set. Precondition: !empty().
  [[nodiscard]] std::uint32_t first() const {
    if (inline_word_ != 0) {
      return static_cast<std::uint32_t>(std::countr_zero(inline_word_));
    }
    for (std::size_t w = 0; w < spill_.size(); ++w) {
      if (spill_[w] != 0) {
        return static_cast<std::uint32_t>((w + 1) * 64 +
                                          std::countr_zero(spill_[w]));
      }
    }
    return 0;  // unreachable for non-empty sets
  }

  friend bool operator==(const ReplicaSet& a, const ReplicaSet& b) {
    if (a.count_ != b.count_ || a.inline_word_ != b.inline_word_) return false;
    const std::size_t n = std::max(a.spill_.size(), b.spill_.size());
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t wa = i < a.spill_.size() ? a.spill_[i] : 0;
      const std::uint64_t wb = i < b.spill_.size() ? b.spill_[i] : 0;
      if (wa != wb) return false;
    }
    return true;
  }

 private:
  static constexpr std::uint64_t bit_mask(std::uint32_t id) {
    return std::uint64_t{1} << (id % 64);
  }

  std::uint64_t& word_for(std::uint32_t id) {
    if (id < 64) return inline_word_;
    const std::size_t w = id / 64 - 1;
    if (w >= spill_.size()) spill_.resize(w + 1, 0);
    return spill_[w];
  }

  template <typename Fn>
  static void visit_word(std::uint64_t word, std::uint32_t base, Fn&& fn) {
    while (word != 0) {
      const int bit = std::countr_zero(word);
      fn(base + static_cast<std::uint32_t>(bit));
      word &= word - 1;
    }
  }

  std::uint64_t inline_word_ = 0;
  std::vector<std::uint64_t> spill_;
  std::uint32_t count_ = 0;
};

}  // namespace adwise
