// Bounds-checked little-endian byte codec used by every serialized state
// blob (PartitionState, ADWISE algorithm state, checkpoint metadata).
//
// All integers are encoded little-endian regardless of host and doubles as
// their IEEE-754 bit pattern, so blobs written on one machine decode on any
// other — the same portability contract as the .adw format. The reader
// throws on any out-of-bounds access instead of reading garbage: a
// truncated or corrupt blob must fail loudly, never resume from half a
// state.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adwise {

class ByteWriter {
 public:
  void u8(std::uint8_t x) { buf_.push_back(static_cast<std::byte>(x)); }

  void u32(std::uint32_t x) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::byte>((x >> (8 * i)) & 0xffu));
    }
  }

  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::byte>((x >> (8 * i)) & 0xffu));
    }
  }

  void f64(double x) { u64(std::bit_cast<std::uint64_t>(x)); }

  void boolean(bool x) { u8(x ? 1 : 0); }

  // Length-prefixed string.
  void str(std::string_view s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  // Unprefixed raw bytes (the caller encodes the length itself).
  void raw(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::byte*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  // Grows the buffer's capacity ahead of a known-size burst of appends.
  void reserve(std::size_t additional) {
    buf_.reserve(buf_.size() + additional);
  }

  // Bulk array writes — byte layout identical to calling u32()/u64() per
  // element, but a single memcpy on little-endian hosts. These keep the
  // per-checkpoint serialization of |V|-sized tables off the profile.
  // Empty spans are skipped up front: data() of an empty vector may be
  // null, and null is UB for memcpy/insert even with a zero length.
  void u32_span(const std::uint32_t* data, std::size_t count) {
    if (count == 0) return;
    if constexpr (std::endian::native == std::endian::little) {
      raw(data, count * sizeof(std::uint32_t));
    } else {
      for (std::size_t i = 0; i < count; ++i) u32(data[i]);
    }
  }

  void u64_span(const std::uint64_t* data, std::size_t count) {
    if (count == 0) return;
    if constexpr (std::endian::native == std::endian::little) {
      raw(data, count * sizeof(std::uint64_t));
    } else {
      for (std::size_t i = 0; i < count; ++i) u64(data[i]);
    }
  }

  [[nodiscard]] const std::vector<std::byte>& data() const { return buf_; }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> in) : in_(in) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return std::to_integer<std::uint8_t>(in_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    need(4);
    std::uint32_t x = 0;
    for (int i = 0; i < 4; ++i) {
      x |= std::to_integer<std::uint32_t>(in_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return x;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8);
    std::uint64_t x = 0;
    for (int i = 0; i < 8; ++i) {
      x |= std::to_integer<std::uint64_t>(in_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return x;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] bool boolean() { return u8() != 0; }

  [[nodiscard]] std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string s(reinterpret_cast<const char*>(in_.data()) + pos_,
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  [[nodiscard]] std::span<const std::byte> raw(std::size_t len) {
    need(len);
    const auto out = in_.subspan(pos_, len);
    pos_ += len;
    return out;
  }

  // Bulk array reads mirroring ByteWriter::u32_span/u64_span. Empty spans
  // are skipped: `out` may be null for an empty destination vector, and
  // null is UB for memcpy even with a zero length.
  void u32_span(std::uint32_t* out, std::size_t count) {
    if (count == 0) return;
    if constexpr (std::endian::native == std::endian::little) {
      const auto bytes = raw(count * sizeof(std::uint32_t));
      std::memcpy(out, bytes.data(), bytes.size());
    } else {
      for (std::size_t i = 0; i < count; ++i) out[i] = u32();
    }
  }

  void u64_span(std::uint64_t* out, std::size_t count) {
    if (count == 0) return;
    if constexpr (std::endian::native == std::endian::little) {
      const auto bytes = raw(count * sizeof(std::uint64_t));
      std::memcpy(out, bytes.data(), bytes.size());
    } else {
      for (std::size_t i = 0; i < count; ++i) out[i] = u64();
    }
  }

  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }

  // Decoding must consume the blob exactly: trailing bytes mean the blob
  // and the decoder disagree about the layout — reject, don't guess.
  void expect_end() const {
    if (pos_ != in_.size()) {
      throw std::runtime_error("state blob has " +
                               std::to_string(in_.size() - pos_) +
                               " trailing bytes after decoding");
    }
  }

 private:
  void need(std::uint64_t len) const {
    if (len > in_.size() - pos_) {
      throw std::runtime_error(
          "state blob truncated: need " + std::to_string(len) +
          " bytes at offset " + std::to_string(pos_) + ", have " +
          std::to_string(in_.size() - pos_));
    }
  }

  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

}  // namespace adwise
