// Work-stealing thread pool for batch-local score evaluation.
//
// N workers each own a deque: a worker pushes and pops its own tasks LIFO
// (cache-warm, newest first) and steals FIFO from the other workers' deques
// when its own runs dry — submissions from inside a pool callback therefore
// land on the submitting worker and spread to idle workers automatically.
// External submissions are sprayed round-robin across the deques.
//
// The pool is long-lived and reusable: submit()/wait_idle() cycles (the
// partitioner runs one cycle per rescore batch) reuse the same threads with
// no teardown in between. wait_idle() blocks until every submitted task —
// including tasks submitted by other tasks — has finished, and rethrows the
// first exception any task raised since the previous wait_idle().
//
// parallel_for(n, fn) is the batch primitive the parallel scorer uses: it
// splits [0, n) into small chunks claimed from a shared atomic cursor by
// num_workers() driver tasks plus the calling thread. fn(begin, end, slot)
// receives a slot id in [0, num_workers()] that is never used by two
// threads concurrently, so callers can index per-slot scratch buffers.
// Chunk→result mapping is by index, so results are deterministic regardless
// of which thread claims which chunk. Must be called from a thread outside
// the pool (a worker calling it could deadlock waiting on its own queue).
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace adwise {

class ThreadPool {
 public:
  // A pool with zero workers degenerates gracefully: submit() runs the task
  // inline and parallel_for() runs everything on the calling thread.
  explicit ThreadPool(unsigned num_workers) {
    queues_.reserve(num_workers);
    stats_.reserve(num_workers);
    for (unsigned i = 0; i < num_workers; ++i) {
      queues_.push_back(std::make_unique<WorkQueue>());
      stats_.push_back(std::make_unique<WorkerStats>());
    }
    workers_.reserve(num_workers);
    for (unsigned i = 0; i < num_workers; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  }

  ~ThreadPool() {
    // Drain everything already submitted (including nested submissions) so
    // no task outlives the object it captured, then stop the workers.
    wait_for_pending();
    stop_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lk(sleep_mutex_);
    }
    sleep_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned num_workers() const {
    return static_cast<unsigned>(workers_.size());
  }
  // Concurrency slots available to parallel_for: the workers plus the
  // calling thread.
  [[nodiscard]] unsigned num_slots() const { return num_workers() + 1; }

  // Per-worker activity counters, maintained unconditionally (one relaxed
  // increment per task / steal / sleep — noise next to the queue mutex).
  // The observability layer publishes these as registry gauges; they are
  // also a scheduling-health debugging aid on their own. Totals are exact
  // after wait_idle(); sampled mid-run they may trail by in-flight tasks.
  struct WorkerStatsSnapshot {
    std::uint64_t executed = 0;  // tasks this worker ran
    std::uint64_t stolen = 0;    // of those, taken from another deque
    std::uint64_t sleeps = 0;    // times the worker parked on the cv
  };
  [[nodiscard]] std::vector<WorkerStatsSnapshot> worker_stats() const {
    std::vector<WorkerStatsSnapshot> out(stats_.size());
    for (std::size_t i = 0; i < stats_.size(); ++i) {
      out[i].executed = stats_[i]->executed.load(std::memory_order_relaxed);
      out[i].stolen = stats_[i]->stolen.load(std::memory_order_relaxed);
      out[i].sleeps = stats_[i]->sleeps.load(std::memory_order_relaxed);
    }
    return out;
  }

  // Enqueues task. Safe to call from any thread, including from inside a
  // running task (the submission goes to the submitting worker's own deque).
  void submit(std::function<void()> task) {
    if (queues_.empty()) {
      pending_.fetch_add(1, std::memory_order_relaxed);
      run_task(std::move(task));
      return;
    }
    pending_.fetch_add(1, std::memory_order_relaxed);
    const Tls& t = tls();
    const std::size_t target =
        t.pool == this
            ? t.index
            : next_queue_.fetch_add(1, std::memory_order_relaxed) %
                  queues_.size();
    {
      std::lock_guard<std::mutex> lk(queues_[target]->mutex);
      queues_[target]->tasks.push_back(std::move(task));
    }
    queued_.fetch_add(1, std::memory_order_release);
    {
      // Empty critical section: pairs with the sleeping worker's predicate
      // check so the queued_ increment cannot slip past a worker that just
      // decided to sleep (no lost wakeup).
      std::lock_guard<std::mutex> lk(sleep_mutex_);
    }
    sleep_cv_.notify_one();
  }

  // Blocks until every submitted task (including nested submissions) has
  // completed, then rethrows the first exception any of them raised.
  void wait_idle() {
    wait_for_pending();
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lk(error_mutex_);
      err = std::exchange(first_error_, nullptr);
    }
    if (err) std::rethrow_exception(err);
  }

  // Runs fn(begin, end, slot) over [0, n), the calling thread working
  // alongside the pool. Blocks until the whole range is done; rethrows the
  // first exception (remaining chunks are skipped once one chunk throws).
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    assert(tls().pool != this && "parallel_for must not be called from a pool worker");
    if (n == 0) return;
    const unsigned caller_slot = num_workers();
    if (queues_.empty() || n == 1) {
      fn(std::size_t{0}, n, caller_slot);
      return;
    }

    struct Loop {
      std::atomic<std::size_t> cursor{0};
      std::atomic<bool> failed{false};
      std::size_t n = 0;
      std::size_t chunk = 1;
      std::mutex mutex;
      std::condition_variable done_cv;
      unsigned active_drivers = 0;
      std::exception_ptr error;
    } loop;
    loop.n = n;
    // A few chunks per slot balances uneven per-item cost (hub edges score
    // slower) without shredding cache locality.
    loop.chunk = std::max<std::size_t>(1, n / (4 * num_slots()));

    auto drive = [&loop, &fn](unsigned slot) {
      while (!loop.failed.load(std::memory_order_relaxed)) {
        const std::size_t begin =
            loop.cursor.fetch_add(loop.chunk, std::memory_order_relaxed);
        if (begin >= loop.n) break;
        const std::size_t end = std::min(loop.n, begin + loop.chunk);
        try {
          fn(begin, end, slot);
        } catch (...) {
          std::lock_guard<std::mutex> lk(loop.mutex);
          if (!loop.error) loop.error = std::current_exception();
          loop.failed.store(true, std::memory_order_relaxed);
        }
      }
    };

    loop.active_drivers = num_workers();
    for (unsigned w = 0; w < num_workers(); ++w) {
      // One driver task per slot: a driver may be stolen by any worker, but
      // each runs exactly once, so its slot id has a single user at a time.
      submit([&loop, &drive, w] {
        drive(w);
        std::lock_guard<std::mutex> lk(loop.mutex);
        if (--loop.active_drivers == 0) loop.done_cv.notify_all();
      });
    }
    drive(caller_slot);
    {
      std::unique_lock<std::mutex> lk(loop.mutex);
      loop.done_cv.wait(lk, [&] { return loop.active_drivers == 0; });
    }
    if (loop.error) std::rethrow_exception(loop.error);
  }

 private:
  struct WorkQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  struct WorkerStats {
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> sleeps{0};
  };

  struct Tls {
    const ThreadPool* pool = nullptr;
    unsigned index = 0;
  };
  static Tls& tls() {
    static thread_local Tls t;
    return t;
  }

  void worker_loop(unsigned self) {
    tls() = {this, self};
    while (true) {
      std::function<void()> task;
      if (try_take(self, task)) {
        stats_[self]->executed.fetch_add(1, std::memory_order_relaxed);
        run_task(std::move(task));
        continue;
      }
      stats_[self]->sleeps.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lk(sleep_mutex_);
      sleep_cv_.wait(lk, [&] {
        return stop_.load(std::memory_order_acquire) ||
               queued_.load(std::memory_order_acquire) > 0;
      });
      if (stop_.load(std::memory_order_acquire) &&
          queued_.load(std::memory_order_acquire) == 0) {
        return;
      }
    }
  }

  bool try_take(unsigned self, std::function<void()>& out) {
    {
      WorkQueue& own = *queues_[self];
      std::lock_guard<std::mutex> lk(own.mutex);
      if (!own.tasks.empty()) {
        out = std::move(own.tasks.back());  // LIFO: newest, cache-warm
        own.tasks.pop_back();
        queued_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
    }
    for (std::size_t i = 1; i < queues_.size(); ++i) {
      WorkQueue& victim = *queues_[(self + i) % queues_.size()];
      std::lock_guard<std::mutex> lk(victim.mutex);
      if (!victim.tasks.empty()) {
        out = std::move(victim.tasks.front());  // FIFO: steal oldest
        victim.tasks.pop_front();
        queued_.fetch_sub(1, std::memory_order_acq_rel);
        stats_[self]->stolen.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  void run_task(std::function<void()> task) {
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lk(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      {
        std::lock_guard<std::mutex> lk(sleep_mutex_);
      }
      idle_cv_.notify_all();
    }
  }

  // Tasks submitted by running tasks increment pending_ before the parent's
  // own decrement, so pending_ only reaches zero once the whole submission
  // tree has completed.
  void wait_for_pending() {
    std::unique_lock<std::mutex> lk(sleep_mutex_);
    idle_cv_.wait(
        lk, [&] { return pending_.load(std::memory_order_acquire) == 0; });
  }

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::unique_ptr<WorkerStats>> stats_;
  std::vector<std::thread> workers_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> queued_{0};   // tasks sitting in deques
  std::atomic<std::size_t> pending_{0};  // submitted, not yet finished
  std::atomic<bool> stop_{false};
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;  // workers: "there may be work"
  std::condition_variable idle_cv_;   // waiters: "pending_ hit zero"
  std::mutex error_mutex_;
  std::exception_ptr first_error_;
};

}  // namespace adwise
