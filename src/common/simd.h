// Portable 4-lane double-precision SIMD wrapper for the scoring core.
//
// The backend is chosen at compile time:
//   - AVX2 (__AVX2__): one 256-bit vector per F64x4
//   - NEON (__aarch64__ + __ARM_NEON): two 128-bit vectors per F64x4
//   - scalar fallback: a struct of four doubles with per-lane loops
// Defining ADWISE_SIMD_FORCE_SCALAR (what -DADWISE_SIMD=OFF sets) forces
// the scalar backend regardless of the target ISA, so CI can keep the
// portable path compiling and bit-identical.
//
// Bit-identity contract. Every operation here maps one-to-one onto the
// scalar IEEE-754 operation per lane: plain add/sub/mul/div, no FMA
// contraction (the build adds -ffp-contract=off globally and never enables
// -mfma), no reassociation, no approximate reciprocals. blend() selects
// whole lanes, so a conditional add expressed as
// blend(g, add(g, w), mask) produces exactly the value of the scalar
// "if (member) g += w" branch — including signed zeros and NaN payloads.
// The scoring property matrix (tests/scoring_identity_test.cpp) pins
// SIMD == scalar placements and counter traces bit-for-bit.
#pragma once

#include <cstdint>

#if defined(ADWISE_SIMD_FORCE_SCALAR)
// scalar fallback selected explicitly
#elif defined(__AVX2__)
#define ADWISE_SIMD_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define ADWISE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace adwise::simd {

inline constexpr std::uint32_t kLanes = 4;

namespace detail {

// 16-entry nibble -> 4-lane select mask table: lane i of entry n is all-ones
// iff bit i of n is set. Shared by every backend (AVX2 blendv keys on the
// sign bit, which all-ones sets; NEON bsl and the scalar loop use the full
// word).
struct LaneMaskTable {
  alignas(32) std::uint64_t mask[16][4];
};

consteval LaneMaskTable make_lane_masks() {
  LaneMaskTable t{};
  for (int n = 0; n < 16; ++n) {
    for (int lane = 0; lane < 4; ++lane) {
      t.mask[n][lane] = ((n >> lane) & 1) ? ~std::uint64_t{0} : 0;
    }
  }
  return t;
}

inline constexpr LaneMaskTable kLaneMasks = make_lane_masks();

}  // namespace detail

#if defined(ADWISE_SIMD_AVX2)

inline constexpr const char* kBackend = "avx2";

struct F64x4 {
  __m256d v;
};

[[nodiscard]] inline F64x4 broadcast(double x) {
  return {_mm256_set1_pd(x)};
}
[[nodiscard]] inline F64x4 load(const double* p) {
  return {_mm256_loadu_pd(p)};
}
[[nodiscard]] inline F64x4 gather(const double* base, std::uint32_t i0,
                                  std::uint32_t i1, std::uint32_t i2,
                                  std::uint32_t i3) {
  // Lane inserts beat vgatherdpd for 4 lanes on every AVX2 core we target.
  return {_mm256_set_pd(base[i3], base[i2], base[i1], base[i0])};
}
inline void store(double* p, F64x4 a) { _mm256_storeu_pd(p, a.v); }
[[nodiscard]] inline F64x4 add(F64x4 a, F64x4 b) {
  return {_mm256_add_pd(a.v, b.v)};
}
[[nodiscard]] inline F64x4 sub(F64x4 a, F64x4 b) {
  return {_mm256_sub_pd(a.v, b.v)};
}
[[nodiscard]] inline F64x4 mul(F64x4 a, F64x4 b) {
  return {_mm256_mul_pd(a.v, b.v)};
}
[[nodiscard]] inline F64x4 div(F64x4 a, F64x4 b) {
  return {_mm256_div_pd(a.v, b.v)};
}
// Lane i of the result is b_i where bit i of nibble is set, a_i otherwise.
[[nodiscard]] inline F64x4 blend(F64x4 a, F64x4 b, unsigned nibble) {
  const __m256d mask = _mm256_castsi256_pd(_mm256_load_si256(
      reinterpret_cast<const __m256i*>(detail::kLaneMasks.mask[nibble])));
  return {_mm256_blendv_pd(a.v, b.v, mask)};
}

#elif defined(ADWISE_SIMD_NEON)

inline constexpr const char* kBackend = "neon";

struct F64x4 {
  float64x2_t lo;
  float64x2_t hi;
};

[[nodiscard]] inline F64x4 broadcast(double x) {
  return {vdupq_n_f64(x), vdupq_n_f64(x)};
}
[[nodiscard]] inline F64x4 load(const double* p) {
  return {vld1q_f64(p), vld1q_f64(p + 2)};
}
[[nodiscard]] inline F64x4 gather(const double* base, std::uint32_t i0,
                                  std::uint32_t i1, std::uint32_t i2,
                                  std::uint32_t i3) {
  float64x2_t lo = vdupq_n_f64(base[i0]);
  lo = vsetq_lane_f64(base[i1], lo, 1);
  float64x2_t hi = vdupq_n_f64(base[i2]);
  hi = vsetq_lane_f64(base[i3], hi, 1);
  return {lo, hi};
}
inline void store(double* p, F64x4 a) {
  vst1q_f64(p, a.lo);
  vst1q_f64(p + 2, a.hi);
}
[[nodiscard]] inline F64x4 add(F64x4 a, F64x4 b) {
  return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
}
[[nodiscard]] inline F64x4 sub(F64x4 a, F64x4 b) {
  return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
}
[[nodiscard]] inline F64x4 mul(F64x4 a, F64x4 b) {
  return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
}
[[nodiscard]] inline F64x4 div(F64x4 a, F64x4 b) {
  return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
}
[[nodiscard]] inline F64x4 blend(F64x4 a, F64x4 b, unsigned nibble) {
  const uint64x2_t mlo = vld1q_u64(detail::kLaneMasks.mask[nibble]);
  const uint64x2_t mhi = vld1q_u64(detail::kLaneMasks.mask[nibble] + 2);
  return {vbslq_f64(mlo, b.lo, a.lo), vbslq_f64(mhi, b.hi, a.hi)};
}

#else  // scalar fallback

inline constexpr const char* kBackend = "scalar";

struct F64x4 {
  double lane[4];
};

[[nodiscard]] inline F64x4 broadcast(double x) { return {{x, x, x, x}}; }
[[nodiscard]] inline F64x4 load(const double* p) {
  return {{p[0], p[1], p[2], p[3]}};
}
[[nodiscard]] inline F64x4 gather(const double* base, std::uint32_t i0,
                                  std::uint32_t i1, std::uint32_t i2,
                                  std::uint32_t i3) {
  return {{base[i0], base[i1], base[i2], base[i3]}};
}
inline void store(double* p, F64x4 a) {
  for (std::uint32_t i = 0; i < kLanes; ++i) p[i] = a.lane[i];
}
[[nodiscard]] inline F64x4 add(F64x4 a, F64x4 b) {
  F64x4 r;
  for (std::uint32_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] + b.lane[i];
  return r;
}
[[nodiscard]] inline F64x4 sub(F64x4 a, F64x4 b) {
  F64x4 r;
  for (std::uint32_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] - b.lane[i];
  return r;
}
[[nodiscard]] inline F64x4 mul(F64x4 a, F64x4 b) {
  F64x4 r;
  for (std::uint32_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] * b.lane[i];
  return r;
}
[[nodiscard]] inline F64x4 div(F64x4 a, F64x4 b) {
  F64x4 r;
  for (std::uint32_t i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] / b.lane[i];
  return r;
}
[[nodiscard]] inline F64x4 blend(F64x4 a, F64x4 b, unsigned nibble) {
  F64x4 r;
  for (std::uint32_t i = 0; i < kLanes; ++i) {
    r.lane[i] = ((nibble >> i) & 1) ? b.lane[i] : a.lane[i];
  }
  return r;
}

#endif

}  // namespace adwise::simd
