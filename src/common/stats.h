// Small statistics helpers shared by the controller, metrics and benches.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace adwise {

// Log2 bucket index for a value, clamped to [0, buckets). Bucket b holds
// values in [2^b, 2^(b+1)) with 0 landing in bucket 0. This is the single
// bucketing rule shared by the Report batch-size histogram and the
// observability layer's latency histograms, so their shapes stay comparable.
[[nodiscard]] constexpr std::size_t log2_bucket(std::uint64_t value,
                                                std::size_t buckets) {
  const std::size_t b =
      value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
  return std::min(b, buckets - 1);
}

// Streaming mean without storing samples.
class RunningMean {
 public:
  void add(double x) {
    ++n_;
    mean_ += (x - mean_) / static_cast<double>(n_);
  }

  void reset() {
    n_ = 0;
    mean_ = 0.0;
  }

  // Reinstates a previously observed (count, mean) pair — checkpoint
  // restore; subsequent add() calls continue the same running mean.
  void restore(std::uint64_t n, double mean) {
    n_ = n;
    mean_ = mean;
  }

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] std::uint64_t count() const { return n_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
};

// Exponentially weighted moving average; alpha is the weight of new samples.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2) : alpha_(alpha) {}

  void add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }

  // Reinstates a previously observed average — checkpoint restore; alpha
  // comes from construction as usual.
  void restore(double value, bool initialized) {
    value_ = value;
    initialized_ = initialized;
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

// Summary statistics of a sample vector (sorts a copy).
[[nodiscard]] inline Summary summarize(std::vector<double> xs) {
  Summary s;
  if (xs.empty()) return s;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  double total = 0.0;
  for (double x : xs) total += x;
  s.mean = total / static_cast<double>(xs.size());
  auto quantile = [&xs](double q) {
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
  };
  s.p50 = quantile(0.5);
  s.p99 = quantile(0.99);
  return s;
}

}  // namespace adwise
