#include "src/common/clock.h"

namespace adwise {

std::chrono::nanoseconds SteadyClock::now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
      std::chrono::steady_clock::now().time_since_epoch());
}

SteadyClock& SteadyClock::instance() {
  static SteadyClock clock;
  return clock;
}

}  // namespace adwise
