// Stateless hash functions used by the hashing-family partitioners.
//
// Hash, Grid and DBH partition by hashing vertex ids; keeping the mixers here
// (rather than std::hash, whose quality is unspecified) makes partitioning
// deterministic across platforms and standard-library versions.
#pragma once

#include <cstdint>

#include "src/common/rng.h"

namespace adwise {

// Mix a single 64-bit key with a seed.
[[nodiscard]] constexpr std::uint64_t hash_u64(std::uint64_t key,
                                               std::uint64_t seed = 0) {
  return splitmix64(key ^ (seed * 0x9e3779b97f4a7c15ULL));
}

// Order-independent hash of an edge (u,v) == (v,u).
[[nodiscard]] constexpr std::uint64_t hash_edge(std::uint64_t u,
                                                std::uint64_t v,
                                                std::uint64_t seed = 0) {
  const std::uint64_t lo = u < v ? u : v;
  const std::uint64_t hi = u < v ? v : u;
  return hash_u64(hash_u64(lo, seed) ^ (hi + 0x517cc1b727220a95ULL), seed);
}

}  // namespace adwise
