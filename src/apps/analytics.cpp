#include "src/apps/analytics.h"

#include <deque>
#include <numeric>

namespace adwise {

WorkloadResult run_connected_components(
    const Graph& graph, std::span<const Assignment> assignments,
    const ClusterModel& model, std::uint64_t max_supersteps,
    std::vector<VertexId>* out_labels) {
  Engine<ComponentsProgram> engine(graph, assignments, model,
                                   ComponentsProgram{});
  engine.activate_all();
  WorkloadResult result;
  result.total = engine.run(max_supersteps);
  result.block_seconds.push_back(result.total.seconds);
  if (out_labels != nullptr) *out_labels = engine.values();
  return result;
}

std::vector<VertexId> reference_components(const Graph& graph) {
  // Union-find with path halving; labels normalized to the smallest vertex
  // id in each component (matching the propagation fixpoint).
  std::vector<VertexId> parent(graph.num_vertices());
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : graph.edges()) {
    const VertexId ru = find(e.u);
    const VertexId rv = find(e.v);
    if (ru != rv) parent[std::max(ru, rv)] = std::min(ru, rv);
  }
  std::vector<VertexId> labels(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) labels[v] = find(v);
  return labels;
}

WorkloadResult run_sssp(const Graph& graph,
                        std::span<const Assignment> assignments,
                        const ClusterModel& model, VertexId source,
                        std::vector<std::uint32_t>* out_distances) {
  Engine<SsspProgram> engine(graph, assignments, model, SsspProgram{});
  engine.deliver_local(source, 0);  // distance 0 arrives at the source
  WorkloadResult result;
  result.total = engine.run(graph.num_vertices() + 2);
  result.block_seconds.push_back(result.total.seconds);
  if (out_distances != nullptr) *out_distances = engine.values();
  return result;
}

std::vector<std::uint32_t> reference_sssp(const Graph& graph,
                                          VertexId source) {
  const Csr csr(graph);
  std::vector<std::uint32_t> dist(graph.num_vertices(), kUnreachable);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (const VertexId n : csr.neighbors(v)) {
      if (dist[n] == kUnreachable) {
        dist[n] = dist[v] + 1;
        queue.push_back(n);
      }
    }
  }
  return dist;
}

TriangleResult run_triangle_count(const Graph& graph,
                                  std::span<const Assignment> assignments,
                                  const ClusterModel& model) {
  const Csr csr(graph);
  Engine<TriangleProgram> engine(graph, assignments, model,
                                 TriangleProgram(&csr));
  engine.activate_all();
  TriangleResult result;
  result.workload.total = engine.run(3);
  result.workload.block_seconds.push_back(result.workload.total.seconds);
  for (const auto& value : engine.values()) {
    result.triangles += value.triangles;
  }
  return result;
}

std::uint64_t reference_triangle_count(const Graph& graph) {
  const Csr csr(graph);
  std::uint64_t count = 0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const auto nbrs = csr.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] <= v) continue;
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (csr.has_edge(nbrs[i], nbrs[j])) ++count;
      }
    }
  }
  return count;
}

}  // namespace adwise
