#include "src/apps/pagerank.h"

#include "src/graph/csr.h"

namespace adwise {

WorkloadResult run_pagerank_blocks(const Graph& graph,
                                   std::span<const Assignment> assignments,
                                   const ClusterModel& model,
                                   std::uint32_t blocks,
                                   std::uint32_t iterations_per_block,
                                   std::vector<double>* out_ranks) {
  PageRankProgram program(graph.degrees());
  Engine<PageRankProgram> engine(graph, assignments, model,
                                 std::move(program));
  engine.activate_all();

  WorkloadResult result;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const RunStats stats = engine.run(iterations_per_block);
    result.block_seconds.push_back(stats.seconds);
    result.total += stats;
  }
  if (out_ranks != nullptr) *out_ranks = engine.values();
  return result;
}

std::vector<double> reference_pagerank(const Graph& graph,
                                       std::uint32_t iterations,
                                       double damping) {
  const Csr csr(graph);
  const VertexId n = graph.num_vertices();
  std::vector<double> rank(n, 1.0);
  std::vector<double> next(n, 0.0);
  for (std::uint32_t it = 0; it < iterations; ++it) {
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (const VertexId u : csr.neighbors(v)) {
        sum += rank[u] / static_cast<double>(csr.degree(u));
      }
      next[v] = (1.0 - damping) + damping * sum;
    }
    rank.swap(next);
  }
  return rank;
}

}  // namespace adwise
