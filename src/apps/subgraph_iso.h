// Subgraph isomorphism — circle (simple cycle) search (Fig. 7d workload).
//
// The paper searches the Brain graph consecutively for circles of path
// lengths 19, 15 and 21 with a message-passing algorithm: messages carry
// partial paths that grow along edges; a circle is found when a full-length
// path returns to its start vertex. This is communication-heavy by design
// (payloads are whole paths, no combiner) — the NP-complete workload the
// paper uses to show that better partitioning pays off most for expensive
// algorithms.
//
// Scale guards (documented simulation choices, see DESIGN.md): searches
// start from a configurable number of seed vertices; each vertex retains at
// most max_pending partial paths per superstep and forwards each with
// probability forward_prob. The guards bound the exponential growth without
// changing how the traffic scales with replication degree.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/apps/pagerank.h"  // WorkloadResult
#include "src/engine/engine.h"
#include "src/graph/graph.h"

namespace adwise {

class SubgraphIsoProgram {
 public:
  using Message = std::vector<VertexId>;  // partial path, in visit order

  struct Value {
    std::uint64_t found = 0;            // circles detected at this vertex
    std::vector<Message> pending;       // paths to extend this superstep
  };
  static constexpr bool kHasCombiner = false;

  struct Params {
    std::uint32_t target_length = 19;   // vertices on the circle
    std::size_t max_pending = 32;       // per-vertex growth cap
    double forward_prob = 1.0;          // per-arc forwarding probability
  };

  explicit SubgraphIsoProgram(Params params) : params_(params) {}

  [[nodiscard]] Value init(VertexId /*v*/, std::uint32_t /*degree*/) const {
    return {};
  }

  [[nodiscard]] Value apply(VertexId v, const Value& current,
                            std::span<const Message> inbox, ApplyInfo* info,
                            EngineContext& /*ctx*/) const {
    Value next;
    next.found = current.found;
    for (const Message& path : inbox) {
      if (path.size() == params_.target_length) {
        // A full path arrives back at its start: circle found.
        if (!path.empty() && path.front() == v) ++next.found;
        continue;
      }
      if (contains(path, v)) continue;
      Message extended = path;
      extended.push_back(v);
      if (next.pending.size() < params_.max_pending) {
        next.pending.push_back(std::move(extended));
      }
    }
    info->activate = !next.pending.empty();
    info->value_changed = true;  // pending travels to the mirrors
    return next;
  }

  template <typename EmitFn>
  void scatter(VertexId /*u*/, const Value& value, VertexId neighbor,
               EngineContext& ctx, EmitFn&& emit) const {
    for (const Message& path : value.pending) {
      if (path.size() == params_.target_length) {
        // Complete paths only travel back to their start vertex.
        if (neighbor == path.front()) emit(path);
        continue;
      }
      if (contains(path, neighbor)) continue;
      if (params_.forward_prob >= 1.0 ||
          ctx.rng->next_bool(params_.forward_prob)) {
        emit(path);
      }
    }
  }

  static std::size_t message_bytes(const Message& m) {
    return sizeof(VertexId) * m.size() + 8;
  }

  static std::size_t value_bytes(const Value& value) {
    std::size_t bytes = 16;
    for (const Message& m : value.pending) bytes += message_bytes(m);
    return bytes;
  }

  [[nodiscard]] const Params& params() const { return params_; }

 private:
  static bool contains(const Message& path, VertexId v) {
    for (const VertexId x : path) {
      if (x == v) return true;
    }
    return false;
  }

  Params params_;
};

struct CircleSearchConfig {
  std::vector<std::uint32_t> lengths = {19, 15, 21};  // paper's three runs
  std::uint32_t seeds_per_search = 8;
  std::size_t max_pending = 32;
  double forward_prob = 1.0;
  std::uint64_t seed = 99;
};

// Runs the consecutive circle searches; block_seconds holds one entry per
// searched length. out_found (optional) receives the circles found per run.
[[nodiscard]] WorkloadResult run_circle_searches(
    const Graph& graph, std::span<const Assignment> assignments,
    const ClusterModel& model, const CircleSearchConfig& config,
    std::vector<std::uint64_t>* out_found = nullptr);

}  // namespace adwise
