// Additional engine workloads: connected components, single-source shortest
// paths, and distributed triangle counting.
//
// These go beyond the paper's four evaluation algorithms but are the bread
// and butter of the graph systems it targets (Pregel/PowerGraph/GraphX) and
// exercise different traffic patterns on the engine: label propagation
// (shrinking active set, combiner-friendly), frontier expansion (wavefront
// traffic), and neighborhood exchange (large payloads, no combiner).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/apps/pagerank.h"  // WorkloadResult
#include "src/engine/engine.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace adwise {

// --- Connected components (label propagation) ----------------------------------

class ComponentsProgram {
 public:
  using Value = VertexId;   // component label: the smallest reachable id
  using Message = VertexId;
  static constexpr bool kHasCombiner = true;

  [[nodiscard]] Value init(VertexId v, std::uint32_t /*degree*/) const {
    return v;
  }

  [[nodiscard]] Value apply(VertexId /*v*/, const Value& current,
                            std::span<const Message> inbox, ApplyInfo* info,
                            EngineContext& ctx) const {
    Value best = current;
    for (const Message& m : inbox) best = std::min(best, m);
    const bool changed = best != current;
    // Superstep 0 seeds the propagation; afterwards only improvements talk.
    info->activate = changed || ctx.superstep == 0;
    info->value_changed = changed;
    return best;
  }

  template <typename EmitFn>
  void scatter(VertexId /*u*/, const Value& value, VertexId /*neighbor*/,
               EngineContext& /*ctx*/, EmitFn&& emit) const {
    emit(value);
  }

  [[nodiscard]] Message combine(Message a, const Message& b) const {
    return std::min(a, b);
  }

  static std::size_t message_bytes(const Message&) { return sizeof(Message); }
  static std::size_t value_bytes(const Value&) { return sizeof(Value); }
};

// Runs label propagation to convergence (bounded by max_supersteps); if
// out_labels is non-null it receives per-vertex component labels (isolated
// vertices keep their own id).
[[nodiscard]] WorkloadResult run_connected_components(
    const Graph& graph, std::span<const Assignment> assignments,
    const ClusterModel& model, std::uint64_t max_supersteps = 10'000,
    std::vector<VertexId>* out_labels = nullptr);

// Single-machine reference (union-find).
[[nodiscard]] std::vector<VertexId> reference_components(const Graph& graph);

// --- Single-source shortest paths (unit weights) ---------------------------------

inline constexpr std::uint32_t kUnreachable =
    std::numeric_limits<std::uint32_t>::max();

class SsspProgram {
 public:
  using Value = std::uint32_t;  // hop distance from the source
  using Message = std::uint32_t;
  static constexpr bool kHasCombiner = true;

  [[nodiscard]] Value init(VertexId /*v*/, std::uint32_t /*degree*/) const {
    return kUnreachable;
  }

  [[nodiscard]] Value apply(VertexId /*v*/, const Value& current,
                            std::span<const Message> inbox, ApplyInfo* info,
                            EngineContext& /*ctx*/) const {
    Value best = current;
    for (const Message& m : inbox) best = std::min(best, m);
    const bool changed = best != current;
    info->activate = changed;
    info->value_changed = changed;
    return best;
  }

  template <typename EmitFn>
  void scatter(VertexId /*u*/, const Value& value, VertexId /*neighbor*/,
               EngineContext& /*ctx*/, EmitFn&& emit) const {
    if (value != kUnreachable) emit(value + 1);
  }

  [[nodiscard]] Message combine(Message a, const Message& b) const {
    return std::min(a, b);
  }

  static std::size_t message_bytes(const Message&) { return sizeof(Message); }
  static std::size_t value_bytes(const Value&) { return sizeof(Value); }
};

// BFS wavefront from source; out_distances receives hop counts
// (kUnreachable for disconnected vertices).
[[nodiscard]] WorkloadResult run_sssp(
    const Graph& graph, std::span<const Assignment> assignments,
    const ClusterModel& model, VertexId source,
    std::vector<std::uint32_t>* out_distances = nullptr);

// Single-machine reference (BFS).
[[nodiscard]] std::vector<std::uint32_t> reference_sssp(const Graph& graph,
                                                        VertexId source);

// --- Triangle counting --------------------------------------------------------------

// Distributed neighborhood exchange: every vertex sends its higher-id
// neighbor list to its higher-id neighbors; the receiver counts
// intersections with its own adjacency (oracle: Csr at the master, exactly
// like the clique program). Each triangle {a < b < c} is counted once, at b,
// when a's list arrives.
class TriangleProgram {
 public:
  using Message = std::vector<VertexId>;  // sender's higher-id neighbors

  struct Value {
    std::uint64_t triangles = 0;
  };
  static constexpr bool kHasCombiner = false;

  explicit TriangleProgram(const Csr* csr) : csr_(csr) {}

  [[nodiscard]] Value init(VertexId /*v*/, std::uint32_t /*degree*/) const {
    return {};
  }

  [[nodiscard]] Value apply(VertexId v, const Value& current,
                            std::span<const Message> inbox, ApplyInfo* info,
                            EngineContext& ctx) const {
    Value next = current;
    for (const Message& list : inbox) {
      for (const VertexId w : list) {
        if (w > v && csr_->has_edge(v, w)) ++next.triangles;
      }
    }
    // Superstep 0: everyone sends its neighbor list once, then goes quiet.
    info->activate = ctx.superstep == 0;
    info->value_changed = next.triangles != current.triangles;
    return next;
  }

  template <typename EmitFn>
  void scatter(VertexId u, const Value& /*value*/, VertexId neighbor,
               EngineContext& /*ctx*/, EmitFn&& emit) const {
    if (neighbor <= u) return;  // send upward only: count each triangle once
    // The upward list of u is reused across all of u's arcs (the engine
    // walks them consecutively); the receiver skips its own id via w > v.
    if (cached_source_ != u) {
      cached_source_ = u;
      cached_list_.clear();
      for (const VertexId w : csr_->neighbors(u)) {
        if (w > u) cached_list_.push_back(w);
      }
    }
    if (!cached_list_.empty()) emit(cached_list_);
  }

  static std::size_t message_bytes(const Message& m) {
    return sizeof(VertexId) * m.size() + 8;
  }

  static std::size_t value_bytes(const Value&) { return sizeof(Value); }

 private:
  const Csr* csr_;
  mutable VertexId cached_source_ = std::numeric_limits<VertexId>::max();
  mutable Message cached_list_;
};

// Counts triangles on the engine; also returns per-run stats.
struct TriangleResult {
  std::uint64_t triangles = 0;
  WorkloadResult workload;
};

[[nodiscard]] TriangleResult run_triangle_count(
    const Graph& graph, std::span<const Assignment> assignments,
    const ClusterModel& model);

// Single-machine reference (sorted adjacency intersection).
[[nodiscard]] std::uint64_t reference_triangle_count(const Graph& graph);

}  // namespace adwise
