// Speculative greedy graph coloring (paper §IV-A2: Fig. 7e workload).
//
// PowerGraph-style distributed coloring: every vertex broadcasts its color
// when it changes; each master caches the colors it has heard from its
// neighbors. A vertex moves when a lower-id (higher-priority) neighbor holds
// its color, choosing the smallest color absent from the cached neighborhood.
// Simultaneous moves can collide speculatively; the next round's messages
// resolve them (the lower id keeps the color). Converged vertices fall
// silent, so message traffic — and the simulated latency per block — decays
// as the coloring stabilizes, and the engine reaches the idle state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/apps/pagerank.h"  // WorkloadResult
#include "src/engine/engine.h"
#include "src/graph/graph.h"

namespace adwise {

class ColoringProgram {
 public:
  using Value = std::uint32_t;  // color

  struct Message {
    VertexId source;
    std::uint32_t color;
  };
  static constexpr bool kHasCombiner = false;

  explicit ColoringProgram(VertexId num_vertices)
      : neighbor_colors_(
            std::make_shared<std::vector<NeighborColors>>(num_vertices)) {}

  [[nodiscard]] Value init(VertexId /*v*/, std::uint32_t /*degree*/) const {
    return 0;
  }

  [[nodiscard]] Value apply(VertexId v, const Value& current,
                            std::span<const Message> inbox, ApplyInfo* info,
                            EngineContext& ctx) const {
    // The neighbor-color cache lives at the master — exactly where apply
    // runs — so reading it costs no network traffic.
    NeighborColors& cache = (*neighbor_colors_)[v];
    for (const Message& m : inbox) cache.set(m.source, m.color);

    if (ctx.superstep == 0) {
      // Everyone announces the initial color once.
      info->activate = true;
      info->value_changed = false;
      return current;
    }
    const bool must_move = cache.holds_lower_conflict(v, current);
    if (!must_move) {
      info->activate = false;
      info->value_changed = false;
      return current;
    }
    const std::uint32_t next = cache.smallest_free_color(scratch_);
    info->activate = next != current;
    info->value_changed = next != current;
    return next;
  }

  template <typename EmitFn>
  void scatter(VertexId u, const Value& value, VertexId /*neighbor*/,
               EngineContext& /*ctx*/, EmitFn&& emit) const {
    emit(Message{u, value});
  }

  static std::size_t message_bytes(const Message&) { return sizeof(Message); }
  static std::size_t value_bytes(const Value&) { return sizeof(Value); }

 private:
  // Sorted (neighbor id -> last heard color) table; compact and
  // binary-searchable, sized by the vertex's live degree.
  class NeighborColors {
   public:
    void set(VertexId id, std::uint32_t color) {
      auto it = std::lower_bound(
          entries_.begin(), entries_.end(), id,
          [](const auto& entry, VertexId key) { return entry.first < key; });
      if (it != entries_.end() && it->first == id) {
        it->second = color;
      } else {
        entries_.insert(it, {id, color});
      }
    }

    [[nodiscard]] bool holds_lower_conflict(VertexId v,
                                            std::uint32_t color) const {
      for (const auto& [id, c] : entries_) {
        if (id >= v) break;  // sorted: lower ids first
        if (c == color) return true;
      }
      return false;
    }

    [[nodiscard]] std::uint32_t smallest_free_color(
        std::vector<std::uint32_t>& scratch) const {
      scratch.clear();
      for (const auto& [id, c] : entries_) scratch.push_back(c);
      std::sort(scratch.begin(), scratch.end());
      std::uint32_t mex = 0;
      for (const std::uint32_t c : scratch) {
        if (c == mex) {
          ++mex;
        } else if (c > mex) {
          break;
        }
      }
      return mex;
    }

   private:
    std::vector<std::pair<VertexId, std::uint32_t>> entries_;
  };

  std::shared_ptr<std::vector<NeighborColors>> neighbor_colors_;
  mutable std::vector<std::uint32_t> scratch_;
};

// Runs `blocks` x `iterations_per_block` coloring supersteps (stopping early
// once converged). If out_colors is non-null it receives the final coloring.
[[nodiscard]] WorkloadResult run_coloring_blocks(
    const Graph& graph, std::span<const Assignment> assignments,
    const ClusterModel& model, std::uint32_t blocks,
    std::uint32_t iterations_per_block,
    std::vector<std::uint32_t>* out_colors = nullptr);

// True if colors is a proper coloring of graph (no monochromatic edge).
[[nodiscard]] bool is_proper_coloring(const Graph& graph,
                                      std::span<const std::uint32_t> colors);

}  // namespace adwise
