// Random-walk clique search via probabilistic flooding (Fig. 7f workload).
//
// The paper searches Orkut for cliques of sizes 3, 4 and 5: vertices
// exchange messages carrying partially found cliques and probabilistically
// (P = 0.5) forward them when connected to every vertex in the partial
// clique. Membership checks use a global adjacency oracle (the engine's
// job in the paper's implementation); message routing still pays full
// network cost, so the traffic remains replication-sensitive.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/apps/pagerank.h"  // WorkloadResult
#include "src/engine/engine.h"
#include "src/graph/csr.h"
#include "src/graph/graph.h"

namespace adwise {

class CliqueProgram {
 public:
  using Message = std::vector<VertexId>;  // partial clique, sorted

  struct Value {
    std::uint64_t found = 0;
    std::vector<Message> pending;
  };
  static constexpr bool kHasCombiner = false;

  struct Params {
    std::uint32_t target_size = 4;
    double forward_prob = 0.5;  // the paper's probabilistic flooding P
    std::size_t max_pending = 64;
  };

  // csr must outlive the program (adjacency oracle).
  CliqueProgram(Params params, const Csr* csr) : params_(params), csr_(csr) {}

  [[nodiscard]] Value init(VertexId /*v*/, std::uint32_t /*degree*/) const {
    return {};
  }

  [[nodiscard]] Value apply(VertexId v, const Value& current,
                            std::span<const Message> inbox, ApplyInfo* info,
                            EngineContext& /*ctx*/) const {
    Value next;
    next.found = current.found;
    for (const Message& clique : inbox) {
      if (contains(clique, v)) continue;
      if (!connected_to_all(v, clique)) continue;
      Message extended = clique;
      insert_sorted(extended, v);
      if (extended.size() == params_.target_size) {
        ++next.found;
        continue;
      }
      if (next.pending.size() < params_.max_pending) {
        next.pending.push_back(std::move(extended));
      }
    }
    info->activate = !next.pending.empty();
    info->value_changed = true;
    return next;
  }

  template <typename EmitFn>
  void scatter(VertexId /*u*/, const Value& value, VertexId neighbor,
               EngineContext& ctx, EmitFn&& emit) const {
    for (const Message& clique : value.pending) {
      if (contains(clique, neighbor)) continue;
      if (ctx.rng->next_bool(params_.forward_prob)) emit(clique);
    }
  }

  static std::size_t message_bytes(const Message& m) {
    return sizeof(VertexId) * m.size() + 8;
  }

  static std::size_t value_bytes(const Value& value) {
    std::size_t bytes = 16;
    for (const Message& m : value.pending) bytes += message_bytes(m);
    return bytes;
  }

 private:
  static bool contains(const Message& clique, VertexId v) {
    for (const VertexId x : clique) {
      if (x == v) return true;
    }
    return false;
  }

  [[nodiscard]] bool connected_to_all(VertexId v,
                                      const Message& clique) const {
    for (const VertexId x : clique) {
      if (!csr_->has_edge(v, x)) return false;
    }
    return true;
  }

  static void insert_sorted(Message& clique, VertexId v) {
    clique.insert(std::upper_bound(clique.begin(), clique.end(), v), v);
  }

  Params params_;
  const Csr* csr_;
};

struct CliqueSearchConfig {
  std::vector<std::uint32_t> sizes = {3, 4, 5};  // paper's clique sizes
  std::uint32_t starts = 10;                     // random start vertices
  double forward_prob = 0.5;
  std::size_t max_pending = 64;
  std::uint32_t max_supersteps = 12;
  std::uint64_t seed = 4242;
};

// One engine run per clique size; block_seconds holds one entry per size.
// out_found (optional) receives the cliques found per size.
[[nodiscard]] WorkloadResult run_clique_searches(
    const Graph& graph, std::span<const Assignment> assignments,
    const ClusterModel& model, const CliqueSearchConfig& config,
    std::vector<std::uint64_t>* out_found = nullptr);

}  // namespace adwise
