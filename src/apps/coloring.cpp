#include "src/apps/coloring.h"

namespace adwise {

WorkloadResult run_coloring_blocks(const Graph& graph,
                                   std::span<const Assignment> assignments,
                                   const ClusterModel& model,
                                   std::uint32_t blocks,
                                   std::uint32_t iterations_per_block,
                                   std::vector<std::uint32_t>* out_colors) {
  Engine<ColoringProgram> engine(graph, assignments, model,
                                 ColoringProgram(graph.num_vertices()));
  engine.activate_all();

  WorkloadResult result;
  for (std::uint32_t b = 0; b < blocks; ++b) {
    const RunStats stats = engine.run(iterations_per_block);
    result.block_seconds.push_back(stats.seconds);
    result.total += stats;
  }
  if (out_colors != nullptr) *out_colors = engine.values();
  return result;
}

bool is_proper_coloring(const Graph& graph,
                        std::span<const std::uint32_t> colors) {
  for (const Edge& e : graph.edges()) {
    if (e.u != e.v && colors[e.u] == colors[e.v]) return false;
  }
  return true;
}

}  // namespace adwise
