// PageRank vertex program (paper §IV-A: Fig. 7a/7b/7c workload).
//
// Synchronous PageRank on the undirected graph:
//   r_{s+1}(v) = 0.15 + 0.85 * sum_{u in N(v)} r_s(u) / deg(u)
// Every vertex stays active; the paper measures processing latency in
// blocks of 100 iterations stacked on top of the partitioning latency.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/engine/engine.h"
#include "src/graph/graph.h"

namespace adwise {

class PageRankProgram {
 public:
  using Value = double;
  using Message = double;
  static constexpr bool kHasCombiner = true;

  PageRankProgram(std::vector<std::uint32_t> degrees, double damping = 0.85)
      : degrees_(std::make_shared<const std::vector<std::uint32_t>>(
            std::move(degrees))),
        damping_(damping) {}

  [[nodiscard]] Value init(VertexId /*v*/, std::uint32_t /*degree*/) const {
    return 1.0;
  }

  [[nodiscard]] Value apply(VertexId /*v*/, const Value& current,
                            std::span<const Message> inbox, ApplyInfo* info,
                            EngineContext& ctx) const {
    info->activate = true;
    if (ctx.superstep == 0 && inbox.empty()) {
      // First superstep only seeds the scatter of the initial ranks.
      info->value_changed = true;
      return current;
    }
    double sum = 0.0;
    for (const Message& m : inbox) sum += m;
    info->value_changed = true;
    return (1.0 - damping_) + damping_ * sum;
  }

  template <typename EmitFn>
  void scatter(VertexId u, const Value& value, VertexId /*neighbor*/,
               EngineContext& /*ctx*/, EmitFn&& emit) const {
    emit(value / static_cast<double>((*degrees_)[u]));
  }

  [[nodiscard]] Message combine(Message a, const Message& b) const {
    return a + b;
  }

  static std::size_t message_bytes(const Message&) { return sizeof(Message); }
  static std::size_t value_bytes(const Value&) { return sizeof(Value); }

 private:
  std::shared_ptr<const std::vector<std::uint32_t>> degrees_;
  double damping_;
};

// Aggregate result of a blocked workload run on the engine.
struct WorkloadResult {
  std::vector<double> block_seconds;  // simulated seconds per block
  RunStats total;
};

// Runs `blocks` x `iterations_per_block` PageRank supersteps and reports the
// simulated latency of each block. If out_ranks is non-null it receives the
// final rank vector.
[[nodiscard]] WorkloadResult run_pagerank_blocks(
    const Graph& graph, std::span<const Assignment> assignments,
    const ClusterModel& model, std::uint32_t blocks,
    std::uint32_t iterations_per_block,
    std::vector<double>* out_ranks = nullptr);

// Single-machine reference implementation: `iterations` rank updates from
// uniform initial ranks. Tests compare the engine against this.
[[nodiscard]] std::vector<double> reference_pagerank(const Graph& graph,
                                                     std::uint32_t iterations,
                                                     double damping = 0.85);

}  // namespace adwise
