#include "src/apps/subgraph_iso.h"

#include "src/common/rng.h"

namespace adwise {

WorkloadResult run_circle_searches(const Graph& graph,
                                   std::span<const Assignment> assignments,
                                   const ClusterModel& model,
                                   const CircleSearchConfig& config,
                                   std::vector<std::uint64_t>* out_found) {
  WorkloadResult result;
  Rng rng(config.seed);
  for (const std::uint32_t length : config.lengths) {
    SubgraphIsoProgram::Params params;
    params.target_length = length;
    params.max_pending = config.max_pending;
    params.forward_prob = config.forward_prob;
    Engine<SubgraphIsoProgram> engine(graph, assignments, model,
                                      SubgraphIsoProgram(params),
                                      config.seed ^ length);
    for (std::uint32_t s = 0; s < config.seeds_per_search; ++s) {
      const auto v =
          static_cast<VertexId>(rng.next_below(graph.num_vertices()));
      engine.deliver_local(v, {});  // empty path: the search roots at v
    }
    // Paths grow by one vertex per superstep; length+2 covers the full
    // exploration plus the returning hop.
    const RunStats stats = engine.run(length + 2);
    result.block_seconds.push_back(stats.seconds);
    result.total += stats;
    if (out_found != nullptr) {
      std::uint64_t found = 0;
      for (const auto& value : engine.values()) found += value.found;
      out_found->push_back(found);
    }
  }
  return result;
}

}  // namespace adwise
