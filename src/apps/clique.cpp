#include "src/apps/clique.h"

#include "src/common/rng.h"

namespace adwise {

WorkloadResult run_clique_searches(const Graph& graph,
                                   std::span<const Assignment> assignments,
                                   const ClusterModel& model,
                                   const CliqueSearchConfig& config,
                                   std::vector<std::uint64_t>* out_found) {
  WorkloadResult result;
  const Csr csr(graph);
  Rng rng(config.seed);
  for (const std::uint32_t size : config.sizes) {
    CliqueProgram::Params params;
    params.target_size = size;
    params.forward_prob = config.forward_prob;
    params.max_pending = config.max_pending;
    Engine<CliqueProgram> engine(graph, assignments, model,
                                 CliqueProgram(params, &csr),
                                 config.seed ^ size);
    for (std::uint32_t s = 0; s < config.starts; ++s) {
      const auto v =
          static_cast<VertexId>(rng.next_below(graph.num_vertices()));
      engine.deliver_local(v, {});  // empty partial clique roots at v
    }
    const RunStats stats = engine.run(config.max_supersteps);
    result.block_seconds.push_back(stats.seconds);
    result.total += stats;
    if (out_found != nullptr) {
      std::uint64_t found = 0;
      for (const auto& value : engine.values()) found += value.found;
      out_found->push_back(found);
    }
  }
  return result;
}

}  // namespace adwise
