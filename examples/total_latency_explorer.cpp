// total_latency_explorer: the paper's headline experiment as a tool.
//
//   $ ./total_latency_explorer [iterations]
//
// Uses the paper's parallel-loading setup (z = 8 partitioner instances,
// k = 32 partitions, spotlight spread 4), sweeps the ADWISE latency
// preference, runs PageRank on the simulated cluster after each
// partitioning, and prints total latency (partitioning + processing) so the
// sweet spot is visible — the Fig. 7a-c story on your own workload size.
#include <cstdio>
#include <cstdlib>

#include "src/apps/pagerank.h"
#include "src/core/adwise_partitioner.h"
#include "src/graph/generators.h"
#include "src/partition/registry.h"
#include "src/partition/spotlight.h"

namespace {

using namespace adwise;

struct Outcome {
  double partition_seconds;   // parallel wall latency (max over instances)
  double processing_seconds;  // simulated cluster seconds
  double replication;
};

Outcome evaluate(const Graph& graph, const PartitionerFactory& factory,
                 std::uint32_t iterations) {
  SpotlightOptions options;  // k=32, z=8, spread=4 (the paper's setup)
  const auto result =
      run_spotlight(graph.edges(), graph.num_vertices(), factory, options);
  const auto workload =
      run_pagerank_blocks(graph, result.assignments,
                          calibrated_cluster_model(), 1, iterations);
  return {result.wall_seconds, workload.total.seconds,
          result.merged.replication_degree()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto iterations =
      static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 300);
  const Graph graph = make_brain_like(0.25).graph;
  std::printf(
      "graph: %u vertices, %zu edges; PageRank x%u iterations; "
      "k=32, z=8, spread=4\n",
      graph.num_vertices(), graph.num_edges(), iterations);
  std::printf("%-14s %8s %8s %8s %8s\n", "strategy", "part_s", "proc_s",
              "total_s", "rep");

  // Baseline: single-edge HDRF fixes the reference latency.
  const Outcome base = evaluate(
      graph,
      [](std::uint32_t, std::uint32_t local_k) {
        return make_baseline_partitioner("hdrf", local_k);
      },
      iterations);
  std::printf("%-14s %8.3f %8.3f %8.3f %8.3f\n", "HDRF",
              base.partition_seconds, base.processing_seconds,
              base.partition_seconds + base.processing_seconds,
              base.replication);

  for (const double multiple : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    AdwiseOptions options;
    options.latency_preference_ms = std::max<std::int64_t>(
        1,
        static_cast<std::int64_t>(base.partition_seconds * multiple * 1e3));
    const Outcome outcome = evaluate(
        graph,
        [&options](std::uint32_t, std::uint32_t) {
          return std::make_unique<AdwisePartitioner>(options);
        },
        iterations);
    char label[32];
    std::snprintf(label, sizeof(label), "ADWISE %.0fx", multiple);
    std::printf("%-14s %8.3f %8.3f %8.3f %8.3f\n", label,
                outcome.partition_seconds, outcome.processing_seconds,
                outcome.partition_seconds + outcome.processing_seconds,
                outcome.replication);
  }
  std::printf(
      "\nReading the table: the paper's guideline is to invest ~2-3x the\n"
      "single-edge latency; beyond the sweet spot the partitioning cost\n"
      "outgrows the processing savings.\n");
  return 0;
}
