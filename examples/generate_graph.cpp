// generate_graph: emit any of the library's synthetic graphs as an edge
// list — the companion tool to partition_file for experiments on disk.
//
//   $ ./generate_graph <preset> [scale] [seed] > graph.txt
//
//   preset  orkut | brain | web | rmat | ws | ba | er
//   scale   size multiplier (default 0.1; presets ~1M edges at 1.0)
//   seed    RNG seed (default 1)
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/graph/generators.h"
#include "src/graph/io.h"

int main(int argc, char** argv) {
  using namespace adwise;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <orkut|brain|web|rmat|ws|ba|er> [scale] [seed]\n",
                 argv[0]);
    return 2;
  }
  const std::string preset = argv[1];
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  if (scale <= 0.0) {
    std::fprintf(stderr, "scale must be positive\n");
    return 2;
  }

  Graph graph;
  if (preset == "orkut") {
    graph = make_orkut_like(scale, seed).graph;
  } else if (preset == "brain") {
    graph = make_brain_like(scale, seed).graph;
  } else if (preset == "web") {
    graph = make_web_like(scale, seed).graph;
  } else if (preset == "rmat") {
    RmatParams params;
    params.num_edges = static_cast<std::size_t>(1e6 * scale);
    params.seed = seed;
    graph = make_rmat(params);
  } else if (preset == "ws") {
    graph = make_watts_strogatz(
        static_cast<VertexId>(250'000 * scale), 4, 0.1, seed);
  } else if (preset == "ba") {
    graph = make_barabasi_albert(
        static_cast<VertexId>(250'000 * scale), 4, seed);
  } else if (preset == "er") {
    graph = make_erdos_renyi(static_cast<VertexId>(250'000 * scale),
                             static_cast<std::size_t>(1e6 * scale), seed);
  } else {
    std::fprintf(stderr, "unknown preset '%s'\n", preset.c_str());
    return 2;
  }

  write_edge_list(std::cout, graph);
  std::fprintf(stderr, "%s: %u vertices, %zu edges\n", preset.c_str(),
               graph.num_vertices(), graph.num_edges());
  return 0;
}
