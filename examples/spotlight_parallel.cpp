// spotlight_parallel: parallel graph loading with the spotlight optimization.
//
//   $ ./spotlight_parallel [z] [k]
//
// Partitions one graph with z parallel HDRF instances under decreasing
// spotlight spread and prints how the merged replication degree improves —
// the paper's Fig. 8 effect, usable as a library feature on any strategy.
#include <cstdio>
#include <cstdlib>

#include "src/graph/generators.h"
#include "src/partition/registry.h"
#include "src/partition/spotlight.h"

int main(int argc, char** argv) {
  using namespace adwise;
  const auto z = static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 8);
  const auto k = static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 32);
  if (z == 0 || k == 0 || k % z != 0) {
    std::fprintf(stderr, "need z > 0, k > 0, z dividing k (got z=%u k=%u)\n",
                 z, k);
    return 2;
  }

  const Graph graph = make_brain_like(0.25).graph;
  std::printf("graph: %u vertices, %zu edges; z=%u instances, k=%u\n",
              graph.num_vertices(), graph.num_edges(), z, k);
  std::printf("%-8s %10s %10s %10s\n", "spread", "rep", "imbal", "wall_s");

  for (std::uint32_t spread = k; spread >= k / z; spread /= 2) {
    SpotlightOptions options;
    options.k = k;
    options.num_partitioners = z;
    options.spread = spread;
    const auto result = run_spotlight(
        graph.edges(), graph.num_vertices(),
        [](std::uint32_t instance, std::uint32_t local_k) {
          return make_baseline_partitioner("hdrf", local_k, instance);
        },
        options);
    std::printf("%-8u %10.3f %10.3f %10.3f\n", spread,
                result.merged.replication_degree(),
                result.merged.imbalance(), result.wall_seconds);
  }
  std::printf(
      "\nspread = k reproduces conventional parallel loading; spread = k/z\n"
      "gives each instance exclusive partitions (the spotlight setting).\n");
  return 0;
}
