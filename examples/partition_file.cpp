// partition_file: command-line streaming partitioner for edge-list files.
//
//   $ ./partition_file <graph.txt|graph.adw|graph.adws> [algorithm] [k]
//                      [latency_ms] [--passes N] [--densify] [--out-of-core]
//                      [--output FILE] [--checkpoint FILE]
//                      [--checkpoint-every N] [--resume CKPT]
//                      [--strict-checkpoints] [--watchdog-ms N]
//                      [--sharded] [--spread N] [--trace FILE]
//                      [--metrics FILE] [--progress-every N]
//
//   graph        SNAP-style text edge list ("u v" per line, # comments), a
//                binary .adw file, or a sharded .adws manifest — all
//                auto-detected by magic (see src/io/adw_format.h,
//                src/io/adw_shards.h and tools/edgelist2adw)
//   algorithm    hash | 1d | grid | dbh | greedy | hdrf | ne | ebv | fennel |
//                ldg | 2ps | adwise (default adwise)
//   k            number of partitions                            (default 32)
//   latency_ms   ADWISE latency preference in ms, -1 = unbounded (default -1)
//   --passes N   restreaming passes (default 1); passes > 1 rewind the
//                on-disk stream, so multi-pass runs stay out-of-core
//   --densify    load the whole file and densify sparse vertex ids in
//                memory first (the pre-out-of-core behavior; needed when
//                file ids are wildly sparse)
//   --out-of-core  explicit alias for the default streaming mode
//   --output FILE  write "u v partition" lines to FILE instead of stdout.
//                The file is written as FILE.partial and atomically renamed
//                into place on success, so a crashed run never leaves a
//                torn result under the final name.
//   --checkpoint FILE      write a durable checkpoint (.adwk) to FILE after
//                every --checkpoint-every assignments (default 65536).
//                Requires --output (the checkpoint records the durable
//                output byte count so a resume can truncate back to it),
//                a single pass, no --densify and no sharded input.
//   --resume CKPT          continue a crashed run from CKPT: restores the
//                partition + algorithm state, truncates FILE.partial to the
//                checkpointed byte count and skips the already-consumed
//                stream prefix. The resumed run is bit-identical
//                (placements and counter traces) to an uninterrupted one.
//                Implies --checkpoint CKPT unless --checkpoint is given.
//   --strict-checkpoints   abort the run on any checkpoint write failure.
//                Without it (the default, degraded mode) a failed durable
//                checkpoint logs a warning, bumps checkpoint.write_failures
//                and the run continues — it just keeps the older recovery
//                point until the next boundary succeeds. Sink durability
//                failures abort in both modes.
//   --watchdog-ms N        arm a stall watchdog with an N ms deadline over
//                the prefetch worker and the async checkpoint writer: a
//                thread wedged past the deadline triggers the degradation
//                paths (sticky synchronous reads / in-band synchronous
//                checkpointing) instead of hanging the run forever.
//   --sharded    treat the input as an .adws manifest even without the
//                magic sniff (mostly for diagnostics; sniffing suffices)
//   --spread N   spotlight spread for sharded input: partitions each
//                instance may fill (default k/z when z divides k, else k)
//   --trace FILE    write a Chrome trace-event JSON (chrome://tracing,
//                Perfetto) of the run: window refills, batch rescores,
//                drain walks, prefetch fills, checkpoint writes, spotlight
//                instances and restream passes on per-thread tracks
//   --metrics FILE  write the end-of-run metrics registry as flat JSON
//                (see docs/OBSERVABILITY.md for the metric catalog)
//   --progress-every N  print a progress line to stderr every N
//                assignments (edges/s, replication, window fill, heap
//                sizes for adwise). stderr only — piped stdout/--output
//                stays byte-identical with or without this flag
//
// Sharded input runs the spotlight parallel loader: one partitioner
// instance per shard, each streaming its own .adw shard file concurrently,
// merged deterministically in instance order — so the printed assignment
// order is reproducible run to run.
//
// The default path never materializes the edge list: edges stream straight
// from disk (prefetched chunks for .adw, line parsing for text) and peak
// resident edge data is bounded by the stream's chunk buffers.
//
// Prints one "u v partition" line per edge (stdout or --output) and a
// quality summary to stderr — the shape a downstream graph system would
// actually consume. For ADWISE a deterministic counter-trace line is also
// printed to stderr; the crash/resume tests compare it across runs.
//
// Exit codes (stable contract for supervisors and the chaos harness):
//   0  success
//   1  any other failure
//   2  usage / flag errors
//   3  corrupt input (bad magic, CRC mismatch, truncation — never retry)
//   4  transient I/O retry budget exhausted (resume from the checkpoint)
//   5  disk full (free space, then resume from the checkpoint)
//
// ADWISE_FAULT_* environment variables install a process-wide seeded
// fault injector (see src/io/fault_injection.h) covering the read paths
// and every AtomicFileWriter-backed artifact — the hook tools/run_chaos.py
// uses to drive unmodified binaries through fault schedules.
#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "src/common/watchdog.h"
#include "src/core/adwise_partitioner.h"
#include "src/graph/file_stream.h"
#include "src/graph/io.h"
#include "src/io/adw_shards.h"
#include "src/io/binary_stream.h"
#include "src/io/checkpoint.h"
#include "src/io/fault_injection.h"
#include "src/io/io_error.h"
#include "src/obs/metrics.h"
#include "src/obs/obs_sink.h"
#include "src/obs/trace.h"
#include "src/partition/checkpoint_run.h"
#include "src/partition/registry.h"
#include "src/partition/restream.h"
#include "src/partition/spotlight.h"

namespace {

void print_usage(const char* prog) {
  std::fprintf(
      stderr,
      "usage: %s <graph.txt|graph.adw|graph.adws> [algorithm] [k]"
      " [latency_ms]\n"
      "          [--passes N] [--densify] [--out-of-core] [--output FILE]\n"
      "          [--checkpoint FILE] [--checkpoint-every N] [--resume CKPT]\n"
      "          [--strict-checkpoints] [--watchdog-ms N]\n"
      "          [--sharded] [--spread N] [--trace FILE] [--metrics FILE]\n"
      "          [--progress-every N]\n",
      prog);
}

// Flushes and fsyncs f, then returns the durable byte count. `path` names
// the file in error messages. Consults the process fault injector's fsync
// failpoint so the chaos harness can fail sink durability too; ENOSPC maps
// to DiskFullError, everything else aborts the run — output bytes whose
// durability is unknown can never be recorded in a checkpoint.
std::uint64_t make_durable(std::FILE* f, const std::string& path) {
  static std::uint64_t fsync_seq = 0;
  int err = 0;
  if (auto* inj = adwise::process_fault_injector()) {
    switch (inj->write_fault(adwise::FaultInjector::WriteOp::kFsync,
                             fsync_seq++)) {
      case adwise::FaultInjector::WriteFault::kEio:
        err = EIO;
        break;
      case adwise::FaultInjector::WriteFault::kEnospc:
        err = ENOSPC;
        break;
      default:
        break;
    }
  }
  if (err == 0 && (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0)) {
    err = errno;
  }
  if (err != 0) {
    const long at = std::ftell(f);
    if (err == ENOSPC || err == EDQUOT) {
      throw adwise::DiskFullError(
          path, at < 0 ? 0 : static_cast<std::uint64_t>(at),
          std::strerror(err));
    }
    if (err == EAGAIN || err == EIO || err == ENOBUFS) {
      // Not retried in place (a failed fsync may have dropped dirty
      // pages), but typed transient: resume truncates the partial output
      // back to the last checkpointed byte count, so rerunning from the
      // checkpoint rewrites exactly the bytes whose durability is unknown.
      throw adwise::TransientIoError("failed to flush partition output " +
                                     path + ": " + std::strerror(err));
    }
    throw std::runtime_error("failed to flush partition output " + path +
                             ": " + std::strerror(err));
  }
  const long pos = std::ftell(f);
  if (pos < 0) {
    throw std::runtime_error("ftell on partition output " + path +
                             " failed: " + std::strerror(errno));
  }
  return static_cast<std::uint64_t>(pos);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adwise;

  // ADWISE_FAULT_* environment variables install a process-wide seeded
  // fault injector (null when none is set). AtomicFileWriter-backed
  // artifacts pick it up implicitly; the read streams get it passed in
  // explicitly below.
  FaultInjector* env_injector = install_fault_injector_from_env();

  std::vector<std::string> positional;
  std::uint32_t passes = 1;
  bool densify = false;
  bool out_of_core = false;
  bool sharded = false;
  bool strict_checkpoints = false;
  long long watchdog_ms = 0;
  std::string output_path;
  std::string checkpoint_path;
  std::string resume_path;
  std::uint64_t checkpoint_every = std::uint64_t{1} << 16;
  std::uint32_t spread = 0;  // 0 = derive from k and shard count
  std::string trace_path;
  std::string metrics_path;
  std::uint64_t progress_every = 0;

  const auto need_value = [&](int& i) -> const char* {
    if (i + 1 >= argc) {
      print_usage(argv[0]);
      std::exit(2);
    }
    return argv[++i];
  };
  const auto parse_count = [&](const char* flag, const char* value,
                               long long lo, long long hi) -> long long {
    char* end = nullptr;
    const long long parsed = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || parsed < lo || parsed > hi) {
      std::fprintf(stderr, "%s expects an integer in [%lld, %lld], got '%s'\n",
                   flag, lo, hi, value);
      std::exit(2);
    }
    return parsed;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--densify") {
      densify = true;
    } else if (arg == "--out-of-core") {
      out_of_core = true;  // the default; accepted for explicitness
    } else if (arg == "--sharded") {
      sharded = true;
    } else if (arg == "--passes") {
      passes = static_cast<std::uint32_t>(
          parse_count("--passes", need_value(i), 1, 1000));
    } else if (arg == "--output") {
      output_path = need_value(i);
    } else if (arg == "--checkpoint") {
      checkpoint_path = need_value(i);
    } else if (arg == "--checkpoint-every") {
      checkpoint_every = static_cast<std::uint64_t>(parse_count(
          "--checkpoint-every", need_value(i), 1,
          std::numeric_limits<long long>::max()));
    } else if (arg == "--resume") {
      resume_path = need_value(i);
    } else if (arg == "--strict-checkpoints") {
      strict_checkpoints = true;
    } else if (arg == "--watchdog-ms") {
      watchdog_ms = parse_count("--watchdog-ms", need_value(i), 1,
                                std::numeric_limits<int>::max());
    } else if (arg == "--spread") {
      spread = static_cast<std::uint32_t>(
          parse_count("--spread", need_value(i), 1,
                      std::numeric_limits<std::uint32_t>::max()));
    } else if (arg == "--trace") {
      trace_path = need_value(i);
    } else if (arg == "--metrics") {
      metrics_path = need_value(i);
    } else if (arg == "--progress-every") {
      progress_every = static_cast<std::uint64_t>(
          parse_count("--progress-every", need_value(i), 1,
                      std::numeric_limits<long long>::max()));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      print_usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  if (densify && out_of_core) {
    std::fprintf(stderr, "--densify and --out-of-core are mutually exclusive\n");
    return 2;
  }
  if (!resume_path.empty() && checkpoint_path.empty()) {
    checkpoint_path = resume_path;  // keep checkpointing into the same file
  }
  const bool checkpointing = !checkpoint_path.empty();

  const std::string path = positional[0];
  const std::string algorithm = positional.size() > 1 ? positional[1] : "adwise";
  const auto k = static_cast<std::uint32_t>(
      positional.size() > 2 ? std::atoi(positional[2].c_str()) : 32);
  const std::int64_t latency_ms =
      positional.size() > 3 ? std::atoll(positional[3].c_str()) : -1;

  // Observability: one registry + trace session for the whole run,
  // declared out here so they outlive every component wired to them
  // (streams, pools, the async checkpoint writer). A null sink pointer —
  // the default when none of the three flags is given — keeps every
  // instrumentation site on its zero-cost branch.
  // Stall watchdog over the background threads (prefetch worker, async
  // checkpoint writer). Declared out here so it outlives the streams and
  // the checkpoint writer, whose destructors detach their handles.
  std::unique_ptr<Watchdog> watchdog;
  if (watchdog_ms > 0) {
    Watchdog::Options wopts;
    wopts.stall_timeout = std::chrono::milliseconds(watchdog_ms);
    wopts.poll_interval =
        std::chrono::milliseconds(std::max<long long>(1, watchdog_ms / 4));
    watchdog = std::make_unique<Watchdog>(wopts);
    watchdog->start();
  }

  obs::MetricsRegistry obs_registry;
  obs::TraceSession obs_trace;
  obs::ObsSink obs_sink;
  obs::ObsSink* obs_ptr = nullptr;
  if (!metrics_path.empty() || !trace_path.empty() || progress_every != 0) {
    if (!metrics_path.empty()) obs_sink.metrics = &obs_registry;
    if (!trace_path.empty()) obs_sink.trace = &obs_trace;
    obs_sink.progress_every = progress_every;
    if (progress_every != 0) {
      obs_sink.on_progress = [](const obs::ProgressSample& s) {
        std::fprintf(stderr,
                     "progress: %llu edges, %.0f edges/s, replication %.4f, "
                     "window %zu/%zu, heaps C=%zu Q=%zu\n",
                     static_cast<unsigned long long>(s.edges_assigned),
                     s.edges_per_sec, s.replication, s.window_size,
                     s.window_target, s.candidate_heap, s.secondary_heap);
      };
    }
    obs_ptr = &obs_sink;
  }
  // Written on every successful exit path (before the summary lines, so a
  // consumer tailing stderr sees the files exist by the time the summary
  // appears). Failures are diagnostics-only — they never fail the run.
  const auto write_obs_outputs = [&]() {
    if (!metrics_path.empty() && !obs_registry.write_json_file(metrics_path)) {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   metrics_path.c_str());
    }
    if (!trace_path.empty() && !obs_trace.write_json_file(trace_path)) {
      std::fprintf(stderr, "warning: could not write trace to %s\n",
                   trace_path.c_str());
    }
  };

  AdwiseOptions adwise_options;
  adwise_options.latency_preference_ms = latency_ms;
  adwise_options.obs = obs_ptr;
  const bool is_adwise = algorithm == "adwise";
  if (!is_adwise) {
    const auto names = baseline_partitioner_names();
    if (std::find(names.begin(), names.end(), algorithm) == names.end()) {
      std::fprintf(stderr, "unknown algorithm '%s' (known: adwise, %s)\n",
                   algorithm.c_str(),
                   baseline_partitioner_names_csv().c_str());
      return 2;
    }
  }

  try {
    const bool sharded_input = sharded || is_adw_manifest(path);
    if (sharded && !is_adw_manifest(path)) {
      throw std::runtime_error("--sharded given but " + path +
                               " is not an .adws manifest");
    }
    if (sharded_input && (densify || passes > 1 || checkpointing)) {
      throw std::runtime_error(
          "sharded input is incompatible with --densify, --passes > 1 and "
          "checkpointing");
    }
    if (checkpointing && (densify || passes > 1)) {
      throw std::runtime_error(
          "checkpointing requires a single out-of-core pass (no --densify, "
          "no --passes > 1)");
    }
    if (checkpointing && output_path.empty()) {
      throw std::runtime_error(
          "--checkpoint/--resume require --output: the checkpoint records "
          "the durable output byte count, which stdout cannot provide");
    }

    // Assignment lines go to stdout or, with --output, to FILE.partial —
    // atomically renamed to FILE only after a fully successful run.
    std::FILE* sink_file = stdout;
    std::string partial_path;
    const auto open_output = [&](bool append) {
      partial_path = output_path + ".partial";
      sink_file = std::fopen(partial_path.c_str(), append ? "ab" : "wb");
      if (sink_file == nullptr) {
        throw std::runtime_error("cannot open " + partial_path + ": " +
                                 std::strerror(errno));
      }
    };
    const auto finalize_output = [&]() {
      if (sink_file == stdout) return;
      make_durable(sink_file, partial_path);
      std::fclose(sink_file);
      sink_file = stdout;
      if (std::rename(partial_path.c_str(), output_path.c_str()) != 0) {
        throw std::runtime_error("cannot rename " + partial_path + " to " +
                                 output_path + ": " + std::strerror(errno));
      }
    };

    LoadResult loaded;  // only populated with --densify
    std::vector<std::uint64_t> densify_ids;
    const auto emit_line = [&](const Edge& e, PartitionId p) {
      const std::uint64_t u = densify ? densify_ids[e.u] : e.u;
      const std::uint64_t v = densify ? densify_ids[e.v] : e.v;
      std::fprintf(sink_file, "%llu %llu %u\n",
                   static_cast<unsigned long long>(u),
                   static_cast<unsigned long long>(v), p);
    };
    // Generic progress for the baselines (adwise reports richer samples
    // itself via on_progress). stderr only — the assignment stream is
    // untouched.
    std::uint64_t progress_count = 0;
    const auto emit_with_progress = [&](const Edge& e, PartitionId p) {
      emit_line(e, p);
      if (progress_every != 0 && !is_adwise &&
          ++progress_count % progress_every == 0) {
        std::fprintf(stderr, "progress: %llu edges assigned\n",
                     static_cast<unsigned long long>(progress_count));
      }
    };
    const auto print_summary = [&](const PartitionState& state) {
      std::fprintf(stderr,
                   "%s, k=%u, passes=%u: replication degree %.4f, "
                   "imbalance %.4f\n",
                   algorithm.c_str(), k, passes, state.replication_degree(),
                   state.imbalance());
    };
    // Deterministic counter trace: identical for an uninterrupted run and a
    // crash-resumed one — the crash tests compare this line verbatim.
    const auto print_adwise_counters = [&](const AdwisePartitioner& p) {
      const auto& r = p.last_report();
      std::fprintf(stderr,
                   "adwise counters: assignments=%llu score_computations=%llu "
                   "heap_pops=%llu forced_secondary=%llu "
                   "secondary_rescans=%llu demotion_sweeps=%llu "
                   "event_reassessments=%llu adaptations=%llu "
                   "max_window=%llu\n",
                   static_cast<unsigned long long>(r.assignments),
                   static_cast<unsigned long long>(r.score_computations),
                   static_cast<unsigned long long>(r.heap_pops),
                   static_cast<unsigned long long>(r.forced_secondary),
                   static_cast<unsigned long long>(r.secondary_rescans),
                   static_cast<unsigned long long>(r.demotion_sweeps),
                   static_cast<unsigned long long>(r.event_reassessments),
                   static_cast<unsigned long long>(r.adaptations),
                   static_cast<unsigned long long>(r.max_window));
    };

    const auto checked_num_vertices = [](std::uint64_t max_vertex_id) {
      // The streaming paths index dense per-vertex state by raw file id:
      // num_vertices = max_id + 1 must not wrap the 32-bit VertexId.
      if (max_vertex_id >= std::numeric_limits<VertexId>::max()) {
        throw std::runtime_error(
            "max vertex id " + std::to_string(max_vertex_id) +
            " leaves no room for num_vertices = max + 1; "
            "use --densify to remap sparse ids");
      }
      return static_cast<VertexId>(max_vertex_id + 1);
    };

    // --- Sharded spotlight path ---------------------------------------------
    if (sharded_input) {
      const AdwManifest manifest = read_and_validate_adw_manifest(path);
      const std::uint32_t z = manifest.num_shards();
      if (z == 0) throw std::runtime_error(path + " has no shards");
      const VertexId num_vertices =
          checked_num_vertices(manifest.max_vertex_id());
      SpotlightOptions sopts;
      sopts.k = k;
      sopts.num_partitioners = z;
      sopts.spread = spread != 0 ? spread : (k % z == 0 ? k / z : k);
      if (sopts.spread > k) {
        throw std::runtime_error("--spread " + std::to_string(sopts.spread) +
                                 " exceeds k=" + std::to_string(k));
      }
      sopts.run_threads = true;
      sopts.obs = obs_ptr;
      std::fprintf(stderr,
                   "streaming %s (.adws): %u shards, %llu edges, max id %u, "
                   "spread %u\n",
                   path.c_str(), z,
                   static_cast<unsigned long long>(manifest.num_edges()),
                   num_vertices - 1, sopts.spread);

      PartitionerFactory pfactory;
      if (is_adwise) {
        pfactory = [adwise_options](std::uint32_t, std::uint32_t) {
          return std::make_unique<AdwisePartitioner>(adwise_options);
        };
      } else {
        pfactory = [algorithm](std::uint32_t, std::uint32_t local_k) {
          return make_baseline_partitioner(algorithm, local_k);
        };
      }
      if (!output_path.empty()) open_output(/*append=*/false);
      const SpotlightResult result =
          run_spotlight_sharded(path, num_vertices, pfactory, sopts);
      // Deterministic instance-order merge: the printed sequence is the
      // shard-concatenated edge order, reproducible run to run.
      for (const Assignment& a : result.assignments) {
        emit_line(a.edge, a.partition);
      }
      finalize_output();
      write_obs_outputs();
      std::fprintf(stderr, "spotlight wall latency: %.3fs (max over %u instances)\n",
                   result.wall_seconds, z);
      print_summary(result.merged);
      return 0;
    }

    // --- Single-stream paths ------------------------------------------------
    std::unique_ptr<RewindableEdgeStream> stream;
    VertexId num_vertices = 0;
    std::size_t num_edges = 0;

    if (densify) {
      loaded = read_edge_list_file(path);
      densify_ids = loaded.original_id;
      num_vertices = loaded.graph.num_vertices();
      num_edges = loaded.graph.num_edges();
      stream = std::make_unique<VectorEdgeStream>(loaded.graph.edges());
      std::fprintf(stderr, "loaded %s (densified): %u vertices, %zu edges\n",
                   path.c_str(), num_vertices, num_edges);
    } else if (is_adw_file(path)) {
      BinaryEdgeStream::Options bopts;
      bopts.obs = obs_ptr;
      bopts.fault_injector = env_injector;
      bopts.watchdog = watchdog.get();
      auto binary = std::make_unique<BinaryEdgeStream>(path, bopts);
      num_vertices = checked_num_vertices(binary->header().max_vertex_id);
      num_edges = static_cast<std::size_t>(binary->header().num_edges);
      stream = std::move(binary);
      std::fprintf(stderr, "streaming %s (.adw): %zu edges, max id %u\n",
                   path.c_str(), num_edges, num_vertices - 1);
    } else {
      const auto stats = FileEdgeStream::scan(path);
      num_vertices = checked_num_vertices(stats.max_vertex_id);
      num_edges = stats.num_edges;
      FileEdgeStream::Options fopts;
      fopts.fault_injector = env_injector;
      stream = std::make_unique<FileEdgeStream>(path, stats.num_edges, fopts);
      std::fprintf(stderr, "streaming %s (text): %zu edges, max id %u\n",
                   path.c_str(), num_edges, num_vertices - 1);
    }

    RestreamFactory factory;
    if (is_adwise) {
      factory = [adwise_options] {
        return std::make_unique<AdwisePartitioner>(adwise_options);
      };
    } else {
      factory = [algorithm, k] { return make_baseline_partitioner(algorithm, k); };
    }

    // --- Checkpointed single-pass path --------------------------------------
    if (checkpointing) {
      auto partitioner = factory();
      PartitionState state(k, num_vertices);

      Checkpoint resume_ckpt;
      const Checkpoint* resume_ptr = nullptr;
      if (!resume_path.empty()) {
        resume_ckpt = read_checkpoint_file(resume_path);
        validate_checkpoint(resume_ckpt.meta, partitioner->name(), k,
                            num_vertices);
        resume_ptr = &resume_ckpt;
        // Roll the partial output back to exactly the bytes the checkpoint
        // accounts for; everything after was written post-checkpoint and
        // will be reproduced bit-identically.
        const std::string partial = output_path + ".partial";
        if (::truncate(partial.c_str(),
                       static_cast<off_t>(resume_ckpt.meta.sink_bytes)) != 0) {
          if (!(errno == ENOENT && resume_ckpt.meta.sink_bytes == 0)) {
            throw std::runtime_error(
                "cannot truncate " + partial + " to " +
                std::to_string(resume_ckpt.meta.sink_bytes) +
                " checkpointed bytes: " + std::strerror(errno));
          }
        }
        std::fprintf(stderr,
                     "resuming from %s: %llu assignments, %llu edges "
                     "consumed, %llu durable output bytes\n",
                     resume_path.c_str(),
                     static_cast<unsigned long long>(
                         resume_ckpt.meta.assignments),
                     static_cast<unsigned long long>(
                         resume_ckpt.meta.edges_consumed),
                     static_cast<unsigned long long>(
                         resume_ckpt.meta.sink_bytes));
      }
      open_output(/*append=*/resume_ptr != nullptr);

      CheckpointRunOptions copts;
      copts.checkpoint_path = checkpoint_path;
      copts.every = checkpoint_every;
      // Overlap checkpoint fsync/rename with partitioning; a crash loses at
      // most the newest in-flight checkpoint, never the previous one.
      copts.async_io = true;
      copts.obs = obs_ptr;
      // Degraded by default: a failed durable checkpoint logs + counts and
      // the run keeps its older recovery point. --strict-checkpoints makes
      // it abort instead.
      copts.strict = strict_checkpoints;
      copts.watchdog = watchdog.get();
      copts.durable_sink_bytes = [&]() {
        return make_durable(sink_file, partial_path);
      };
      // Crash-test kill switch: SIGKILL this process right after the N-th
      // checkpoint written by THIS run — no cleanup, no flushes, exactly
      // the failure the checkpoint format must survive.
      if (const char* kill_after =
              std::getenv("ADWISE_TEST_KILL_AFTER_CHECKPOINT")) {
        const long long n = std::atoll(kill_after);
        copts.on_checkpoint = [n](std::uint64_t ordinal) {
          if (n > 0 && ordinal >= static_cast<std::uint64_t>(n)) {
            ::kill(::getpid(), SIGKILL);
          }
        };
      }

      const std::uint64_t written = run_with_checkpoints(
          *partitioner, *stream, state, emit_with_progress, copts, resume_ptr);
      finalize_output();
      write_obs_outputs();
      std::fprintf(stderr, "checkpoints written this run: %llu (to %s)\n",
                   static_cast<unsigned long long>(written),
                   checkpoint_path.c_str());
      if (const auto* adw =
              dynamic_cast<const AdwisePartitioner*>(partitioner.get())) {
        print_adwise_counters(*adw);
      }
      print_summary(state);
      return 0;
    }

    // --- Default (restreaming) path -----------------------------------------
    if (!output_path.empty()) open_output(/*append=*/false);
    // Assignments print straight from the final pass's sink — nothing
    // |E|-sized is ever buffered, so graphs larger than RAM work.
    const auto result = restream_partition(*stream, num_vertices, k, factory,
                                           passes, emit_with_progress, obs_ptr);
    finalize_output();
    write_obs_outputs();

    for (std::size_t pass = 0; pass + 1 < result.pass_replication.size();
         ++pass) {
      std::fprintf(stderr, "pass %zu: replication degree %.4f\n", pass + 1,
                   result.pass_replication[pass]);
    }
    print_summary(result.final_state);
  } catch (const DiskFullError& e) {
    // Exit 5: out of space. Free space, then resume from the checkpoint.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 5;
  } catch (const TransientIoError& e) {
    // Exit 4: every retry budget exhausted on a transient condition.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 4;
  } catch (const CorruptDataError& e) {
    // Exit 3: the input itself is damaged — retrying cannot help.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
