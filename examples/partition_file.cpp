// partition_file: command-line streaming partitioner for edge-list files.
//
//   $ ./partition_file <graph.txt|graph.adw> [algorithm] [k] [latency_ms]
//                      [--passes N] [--densify] [--out-of-core]
//
//   graph        SNAP-style text edge list ("u v" per line, # comments) or
//                a binary .adw file (auto-detected by magic; see
//                src/io/adw_format.h and tools/edgelist2adw)
//   algorithm    hash | grid | dbh | greedy | hdrf | ne | adwise (default adwise)
//   k            number of partitions                            (default 32)
//   latency_ms   ADWISE latency preference in ms, -1 = unbounded (default -1)
//   --passes N   restreaming passes (default 1); passes > 1 rewind the
//                on-disk stream, so multi-pass runs stay out-of-core
//   --densify    load the whole file and densify sparse vertex ids in
//                memory first (the pre-out-of-core behavior; needed when
//                file ids are wildly sparse)
//   --out-of-core  explicit alias for the default streaming mode
//
// The default path never materializes the edge list: edges stream straight
// from disk (prefetched chunks for .adw, line parsing for text) and peak
// resident edge data is bounded by the stream's chunk buffers.
//
// Prints one "u v partition" line per edge to stdout and a quality summary
// to stderr — the shape a downstream graph system would actually consume.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/adwise_partitioner.h"
#include "src/graph/file_stream.h"
#include "src/graph/io.h"
#include "src/io/binary_stream.h"
#include "src/partition/registry.h"
#include "src/partition/restream.h"

namespace {

void print_usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s <graph.txt|graph.adw> [algorithm] [k] [latency_ms]"
               " [--passes N] [--densify] [--out-of-core]\n",
               prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adwise;

  std::vector<std::string> positional;
  std::uint32_t passes = 1;
  bool densify = false;
  bool out_of_core = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--densify") {
      densify = true;
    } else if (arg == "--out-of-core") {
      out_of_core = true;  // the default; accepted for explicitness
    } else if (arg == "--passes") {
      if (i + 1 >= argc) {
        print_usage(argv[0]);
        return 2;
      }
      const char* value = argv[++i];
      char* end = nullptr;
      const long long parsed = std::strtoll(value, &end, 10);
      if (end == value || *end != '\0' || parsed < 1 || parsed > 1000) {
        std::fprintf(stderr, "--passes expects an integer in [1, 1000], got '%s'\n",
                     value);
        return 2;
      }
      passes = static_cast<std::uint32_t>(parsed);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      print_usage(argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  if (densify && out_of_core) {
    std::fprintf(stderr, "--densify and --out-of-core are mutually exclusive\n");
    return 2;
  }
  const std::string path = positional[0];
  const std::string algorithm = positional.size() > 1 ? positional[1] : "adwise";
  const auto k = static_cast<std::uint32_t>(
      positional.size() > 2 ? std::atoi(positional[2].c_str()) : 32);
  const std::int64_t latency_ms =
      positional.size() > 3 ? std::atoll(positional[3].c_str()) : -1;

  RestreamFactory factory;
  if (algorithm == "adwise") {
    AdwiseOptions options;
    options.latency_preference_ms = latency_ms;
    factory = [options] { return std::make_unique<AdwisePartitioner>(options); };
  } else {
    const auto names = baseline_partitioner_names();
    if (std::find(names.begin(), names.end(), algorithm) == names.end()) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
      return 2;
    }
    factory = [algorithm, k] { return make_baseline_partitioner(algorithm, k); };
  }

  try {
    std::unique_ptr<RewindableEdgeStream> stream;
    LoadResult loaded;  // only populated with --densify
    std::vector<std::uint64_t> densify_ids;
    VertexId num_vertices = 0;
    std::size_t num_edges = 0;

    // The streaming paths index dense per-vertex state by raw file id:
    // num_vertices = max_id + 1 must not wrap the 32-bit VertexId.
    const auto checked_num_vertices = [](std::uint64_t max_vertex_id) {
      if (max_vertex_id >=
          std::numeric_limits<VertexId>::max()) {
        throw std::runtime_error(
            "max vertex id " + std::to_string(max_vertex_id) +
            " leaves no room for num_vertices = max + 1; "
            "use --densify to remap sparse ids");
      }
      return static_cast<VertexId>(max_vertex_id + 1);
    };

    if (densify) {
      loaded = read_edge_list_file(path);
      densify_ids = loaded.original_id;
      num_vertices = loaded.graph.num_vertices();
      num_edges = loaded.graph.num_edges();
      stream = std::make_unique<VectorEdgeStream>(loaded.graph.edges());
      std::fprintf(stderr, "loaded %s (densified): %u vertices, %zu edges\n",
                   path.c_str(), num_vertices, num_edges);
    } else if (is_adw_file(path)) {
      auto binary = std::make_unique<BinaryEdgeStream>(path);
      num_vertices = checked_num_vertices(binary->header().max_vertex_id);
      num_edges = static_cast<std::size_t>(binary->header().num_edges);
      stream = std::move(binary);
      std::fprintf(stderr, "streaming %s (.adw): %zu edges, max id %u\n",
                   path.c_str(), num_edges, num_vertices - 1);
    } else {
      const auto stats = FileEdgeStream::scan(path);
      num_vertices = checked_num_vertices(stats.max_vertex_id);
      num_edges = stats.num_edges;
      stream = std::make_unique<FileEdgeStream>(path, stats.num_edges);
      std::fprintf(stderr, "streaming %s (text): %zu edges, max id %u\n",
                   path.c_str(), num_edges, num_vertices - 1);
    }

    // Assignments print straight from the final pass's sink — nothing
    // |E|-sized is ever buffered, so graphs larger than RAM work.
    const auto result = restream_partition(
        *stream, num_vertices, k, factory, passes,
        [&](const Edge& e, PartitionId p) {
          const std::uint64_t u = densify ? densify_ids[e.u] : e.u;
          const std::uint64_t v = densify ? densify_ids[e.v] : e.v;
          std::printf("%llu %llu %u\n", static_cast<unsigned long long>(u),
                      static_cast<unsigned long long>(v), p);
        });

    for (std::size_t pass = 0; pass + 1 < result.pass_replication.size();
         ++pass) {
      std::fprintf(stderr, "pass %zu: replication degree %.4f\n", pass + 1,
                   result.pass_replication[pass]);
    }
    std::fprintf(stderr,
                 "%s, k=%u, passes=%u: replication degree %.4f, "
                 "imbalance %.4f\n",
                 algorithm.c_str(), k, passes,
                 result.final_state.replication_degree(),
                 result.final_state.imbalance());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
