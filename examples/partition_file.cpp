// partition_file: command-line streaming partitioner for edge-list files.
//
//   $ ./partition_file <graph.txt> [algorithm] [k] [latency_ms]
//
//   graph.txt   SNAP-style edge list ("u v" per line, # comments)
//   algorithm   hash | grid | dbh | greedy | hdrf | ne | adwise  (default adwise)
//   k           number of partitions                             (default 32)
//   latency_ms  ADWISE latency preference in ms, -1 = unbounded  (default -1)
//
// Prints one "u v partition" line per edge to stdout and a quality summary
// to stderr — the shape a downstream graph system would actually consume.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/adwise_partitioner.h"
#include "src/graph/io.h"
#include "src/partition/registry.h"

int main(int argc, char** argv) {
  using namespace adwise;
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <graph.txt> [algorithm] [k] [latency_ms]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const std::string algorithm = argc > 2 ? argv[2] : "adwise";
  const auto k = static_cast<std::uint32_t>(argc > 3 ? std::atoi(argv[3]) : 32);
  const std::int64_t latency_ms = argc > 4 ? std::atoll(argv[4]) : -1;

  LoadResult loaded;
  try {
    loaded = read_edge_list_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const Graph& graph = loaded.graph;
  std::fprintf(stderr, "loaded %s: %u vertices, %zu edges\n", path.c_str(),
               graph.num_vertices(), graph.num_edges());

  std::unique_ptr<EdgePartitioner> partitioner;
  if (algorithm == "adwise") {
    AdwiseOptions options;
    options.latency_preference_ms = latency_ms;
    partitioner = std::make_unique<AdwisePartitioner>(options);
  } else {
    partitioner = make_baseline_partitioner(algorithm, k);
    if (partitioner == nullptr) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
      return 2;
    }
  }

  PartitionState state(k, graph.num_vertices());
  VectorEdgeStream stream(graph.edges());
  const auto& ids = loaded.original_id;
  partitioner->partition(stream, state, [&](const Edge& e, PartitionId p) {
    std::printf("%llu %llu %u\n",
                static_cast<unsigned long long>(ids[e.u]),
                static_cast<unsigned long long>(ids[e.v]), p);
  });

  std::fprintf(stderr,
               "%s, k=%u: replication degree %.4f, imbalance %.4f\n",
               algorithm.c_str(), k, state.replication_degree(),
               state.imbalance());
  return 0;
}
