// Quickstart: partition a graph with ADWISE in a dozen lines.
//
//   $ ./quickstart
//
// Generates a clustered graph, streams it through ADWISE with a latency
// preference, and prints the resulting partitioning quality next to the
// classic single-edge HDRF baseline.
#include <cstdio>

#include "src/core/adwise_partitioner.h"
#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/partition/hdrf_partitioner.h"

int main() {
  using namespace adwise;

  // 1. A graph. Any edge source works; here: a synthetic community graph.
  const Graph graph =
      make_community_graph({.num_communities = 400, .seed = 7});
  std::printf("graph: %u vertices, %zu edges\n", graph.num_vertices(),
              graph.num_edges());

  // 2. Configure ADWISE: 32 partitions, invest up to 2 seconds.
  AdwiseOptions options;
  options.latency_preference_ms = 2000;

  // 3. Stream the edges through the partitioner.
  AdwisePartitioner adwise(options);
  PartitionState state(/*k=*/32, graph.num_vertices());
  VectorEdgeStream stream(graph.edges());
  adwise.partition(stream, state, [](const Edge& e, PartitionId p) {
    // Each assignment is delivered here; a real system would ship edge e
    // to worker p. The quickstart only counts them via PartitionState.
    (void)e;
    (void)p;
  });

  // 4. Inspect the result.
  const auto& report = adwise.last_report();
  std::printf("ADWISE: replication degree %.3f, imbalance %.3f\n",
              state.replication_degree(), state.imbalance());
  std::printf("        %.3f s, max window %llu, final lambda %.2f\n",
              report.seconds,
              static_cast<unsigned long long>(report.max_window),
              report.final_lambda);

  // 5. Compare with single-edge HDRF.
  HdrfPartitioner hdrf;
  PartitionState hdrf_state(32, graph.num_vertices());
  VectorEdgeStream hdrf_stream(graph.edges());
  hdrf.partition(hdrf_stream, hdrf_state);
  std::printf("HDRF:   replication degree %.3f, imbalance %.3f\n",
              hdrf_state.replication_degree(), hdrf_state.imbalance());
  return 0;
}
