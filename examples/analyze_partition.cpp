// analyze_partition: quality report for a stored partitioning.
//
//   $ ./analyze_partition <graph.txt> <assignment.txt>
//
//   graph.txt        SNAP-style edge list
//   assignment.txt   "u v partition" lines (partition_file's output format)
//
// Prints the full quality report — Eq. 1 replication degree, balance,
// replica histogram, communication volume, per-partition sizes — the
// numbers an operator checks before committing a partitioning to a cluster.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "src/graph/io.h"
#include "src/partition/quality.h"

int main(int argc, char** argv) {
  using namespace adwise;
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <graph.txt> <assignment.txt>\n", argv[0]);
    return 2;
  }

  LoadResult loaded;
  try {
    loaded = read_edge_list_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  // File-level ids -> dense ids used by the loaded graph.
  std::unordered_map<std::uint64_t, VertexId> dense;
  dense.reserve(loaded.original_id.size());
  for (VertexId v = 0; v < loaded.original_id.size(); ++v) {
    dense[loaded.original_id[v]] = v;
  }

  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[2]);
    return 1;
  }
  std::vector<Assignment> assignments;
  assignments.reserve(loaded.graph.num_edges());
  PartitionId max_partition = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::uint64_t raw_u = 0;
    std::uint64_t raw_v = 0;
    PartitionId p = 0;
    if (!(fields >> raw_u >> raw_v >> p)) {
      std::fprintf(stderr, "error: malformed line %zu: '%s'\n", line_no,
                   line.c_str());
      return 1;
    }
    const auto u = dense.find(raw_u);
    const auto v = dense.find(raw_v);
    if (u == dense.end() || v == dense.end()) {
      std::fprintf(stderr, "error: line %zu references unknown vertex\n",
                   line_no);
      return 1;
    }
    assignments.push_back({{u->second, v->second}, p});
    max_partition = std::max(max_partition, p);
  }
  if (assignments.size() != loaded.graph.num_edges()) {
    std::fprintf(stderr,
                 "warning: %zu assignments for %zu edges — metrics cover "
                 "the assigned subset only\n",
                 assignments.size(), loaded.graph.num_edges());
  }

  const QualityReport report = analyze_quality(
      assignments, max_partition + 1, loaded.graph.num_vertices());

  std::printf("graph: %u vertices, %zu edges, %u partitions\n",
              loaded.graph.num_vertices(), loaded.graph.num_edges(),
              max_partition + 1);
  std::printf("replication degree : %.4f\n", report.replication_degree);
  std::printf("imbalance          : %.4f\n", report.imbalance);
  std::printf("cut vertices       : %llu of %llu\n",
              static_cast<unsigned long long>(report.cut_vertices),
              static_cast<unsigned long long>(report.vertices_with_replicas));
  std::printf("comm volume        : %llu mirror(s)\n",
              static_cast<unsigned long long>(report.communication_volume));
  std::printf("replica histogram  :");
  for (std::size_t r = 1; r < report.replica_histogram.size(); ++r) {
    std::printf(" %zu:%llu", r,
                static_cast<unsigned long long>(report.replica_histogram[r]));
  }
  std::printf("\npartition sizes    :");
  for (const auto size : report.partition_sizes) {
    std::printf(" %llu", static_cast<unsigned long long>(size));
  }
  std::printf("\n");
  return 0;
}
