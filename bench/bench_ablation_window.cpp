// Ablation: raw window-size → quality curve (adaptation disabled). This is
// the trade-off the adaptive controller navigates at runtime: larger windows
// buy replication degree with partitioning latency.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  const NamedGraph named = make_web_like(env_scale(0.25));
  print_title("Ablation: fixed window-size sweep (k=32)");
  print_graph_info(named);
  std::printf("%-10s %10s %8s %8s\n", "window", "part_s", "rep", "imbal");

  for (const std::uint64_t window :
       {1ull, 4ull, 16ull, 64ull, 256ull, 1024ull}) {
    AdwiseOptions opts;
    opts.adaptive_window = false;
    opts.initial_window = window;
    const PartitionRun run = run_partition_single(
        named.graph, adwise_strategy("adwise", opts), 32,
        StreamOrder::kShuffled);
    std::printf("%-10llu %10.3f %8.3f %8.3f\n",
                static_cast<unsigned long long>(window), run.seconds,
                run.replication, run.imbalance);
  }
  return 0;
}
