// Figure 7c: PageRank on the Orkut stand-in. Per the paper (§IV-A3) the
// clustering score is switched off: Orkut's clustering coefficient is too
// low for window neighborhoods to carry signal.
#include "bench/fig7_helpers.h"

int main() {
  using namespace adwise::bench;
  PageRankFigure figure;
  figure.title = "Figure 7c: PageRank on orkut-like (k=32, z=8, spread=4)";
  figure.graph = adwise::make_orkut_like(env_scale(0.5));
  figure.clustering_score = false;
  figure.blocks = 3;
  figure.iterations_per_block = 100;
  run_pagerank_figure(figure);
  return 0;
}
