// Table II: the evaluation graphs — |V|, |E| and sampled clustering
// coefficient c^ for the three synthetic stand-ins (DESIGN.md §4 documents
// the substitution for Orkut / Brain / Web).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/metrics.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  print_title("Table II: real-world graph stand-ins");
  std::printf("%-12s %12s %14s %10s %8s  %s\n", "Name", "|V|", "|E|", "c^",
              "maxdeg", "Type");

  const double scale = env_scale(0.5);
  const NamedGraph graphs[] = {make_orkut_like(scale), make_brain_like(scale),
                               make_web_like(scale)};
  for (const NamedGraph& named : graphs) {
    const Csr csr(named.graph);
    const double cc = clustering_coefficient(csr);
    const DegreeStats deg = degree_stats(named.graph);
    std::printf("%-12s %12u %14zu %10.4f %8u  %s\n", named.name.c_str(),
                named.graph.num_vertices(), named.graph.num_edges(), cc,
                deg.max, named.kind.c_str());
  }
  std::printf(
      "\npaper reference: Orkut c^=0.0413, Brain c^=0.5098, Web c^=0.8160\n");
  return 0;
}
