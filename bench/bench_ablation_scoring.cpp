// Ablation (google-benchmark): the scoring core.
//
// Two layers of captures:
//
//  * BM_ScoreKernel — the placement kernel in isolation: a PartitionState
//    prepopulated by hashing a skewed rmat stream, then repeated
//    best_placement() calls over a fixed probe set. Each (path, k) point is
//    captured twice — `scalar` runs the pre-existing reference (sparse
//    ReplicaSet layout, scalar arithmetic), `simd` runs the tentpole
//    configuration (DenseReplicaRows mirror + AVX2/NEON kernels) — so the
//    JSON carries the exact speedup the CI guardrail gates:
//    tools/check_bench_guardrail.py --scoring requires dense_k256_simd to
//    hold >= 2x the edges/second of dense_k256_scalar, and the sparse simd
//    captures to at least not regress. Identity of the two variants'
//    decisions is pinned separately by tests/scoring_identity_test.cpp.
//
//  * BM_AdwiseAblation / BM_AdwisePartition — the original scoring-term
//    ablation (Eq. 7: adaptive balancing, degree-aware replication,
//    clustering switched off one at a time) and an end-to-end scalar-vs-simd
//    pair, kept as whole-partition captures with replication/imbalance
//    counters. Recorded, never gated: end-to-end runs dilute the kernel by
//    window maintenance and I/O.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/adwise_partitioner.h"
#include "src/core/scoring.h"
#include "src/core/window.h"
#include "src/partition/partition_state.h"

namespace {

using namespace adwise;

// Skewed kernel workload: rmat hubs give wide replica sets, so the sparse
// candidate walks are realistically scattered and the dense rows are
// realistically populated.
const Graph& kernel_graph() {
  static const Graph graph = make_rmat(
      {.scale = 12,
       .num_edges = static_cast<std::size_t>(60'000 * bench::env_scale()),
       .seed = 7});
  return graph;
}

const std::vector<Edge>& probe_edges() {
  static const std::vector<Edge> probe = [] {
    auto edges = ordered_edges(kernel_graph(), StreamOrder::kShuffled, 11);
    if (edges.size() > 4096) edges.resize(4096);
    return edges;
  }();
  return probe;
}

// Deterministic spread assignment (not a partitioner run: the kernel bench
// wants identical, densely populated state for every capture, cheap to
// rebuild per k).
PartitionId hash_partition(const Edge& e, std::uint32_t k) {
  const std::uint64_t h =
      e.u * 0x9E3779B97F4A7C15ull + e.v * 0xC2B2AE3D27D4EB4Full;
  return static_cast<PartitionId>(h % k);
}

void BM_ScoreKernel(benchmark::State& state, std::uint32_t k,
                    ScoringPath path, bool accelerated) {
  const Graph& graph = kernel_graph();
  PartitionState pstate(k, graph.num_vertices());
  for (const Edge& e : graph.edges()) pstate.assign(e, hash_partition(e, k));
  if (accelerated) {
    pstate.enable_dense_rows();
  } else {
    pstate.disable_dense_rows();
  }
  AdwiseOptions opts;
  opts.scoring_path = path;
  opts.simd_scoring = accelerated;
  AdwiseScorer scorer(pstate, opts, graph.num_edges());
  const std::vector<Edge>& probe = probe_edges();
  for (auto _ : state) {
    double acc = 0.0;
    for (const Edge& e : probe) {
      // window == nullptr: CS contributes zero (but its arithmetic still
      // runs), isolating the balance+replication core both variants share.
      acc += scorer.best_placement(e, nullptr, EdgeWindow::npos).score;
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * probe.size()));
  state.counters["partitions_per_edge"] =
      static_cast<double>(scorer.partitions_considered()) /
      static_cast<double>(state.iterations() * probe.size());
}

// --- Whole-partition captures ----------------------------------------------

void run_partition_capture(benchmark::State& state, const AdwiseOptions& opts,
                           std::uint32_t k) {
  const auto named = make_orkut_like(bench::env_scale(0.12));
  const bench::Strategy strategy = bench::adwise_strategy("capture", opts);
  double replication = 0.0, imbalance = 0.0;
  for (auto _ : state) {
    const bench::PartitionRun run = bench::run_partition_single(
        named.graph, strategy, k, StreamOrder::kShuffled);
    replication = run.replication;
    imbalance = run.imbalance;
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * named.graph.num_edges()));
  state.counters["replication"] = replication;
  state.counters["imbalance"] = imbalance;
}

// Eq. 7 term ablation (fixed window w=128, k=32), unchanged semantics from
// the printf-era bench.
void BM_AdwiseAblation(benchmark::State& state, bool balance, bool degree,
                       bool clustering) {
  AdwiseOptions opts;
  opts.adaptive_window = false;
  opts.initial_window = 128;
  opts.adaptive_balance = balance;
  opts.lambda_init = balance ? 1.0 : 1.1;  // HDRF-recommended fixed lambda
  opts.degree_weighting = degree;
  opts.clustering_score = clustering;
  run_partition_capture(state, opts, 32);
}

// End-to-end scalar reference vs accelerated core (recorded only).
void BM_AdwisePartition(benchmark::State& state, bool accelerated) {
  AdwiseOptions opts;
  opts.adaptive_window = false;
  opts.initial_window = 128;
  opts.replica_layout =
      accelerated ? ReplicaLayout::kAuto : ReplicaLayout::kSparse;
  opts.simd_scoring = accelerated;
  run_partition_capture(state, opts, 32);
}

}  // namespace

// The guardrail pair: the pinned dense O(k) path at the dense-row maximum.
BENCHMARK_CAPTURE(BM_ScoreKernel, dense_k256_scalar, 256u,
                  ScoringPath::kDense, false);
BENCHMARK_CAPTURE(BM_ScoreKernel, dense_k256_simd, 256u, ScoringPath::kDense,
                  true);
BENCHMARK_CAPTURE(BM_ScoreKernel, dense_k32_scalar, 32u, ScoringPath::kDense,
                  false);
BENCHMARK_CAPTURE(BM_ScoreKernel, dense_k32_simd, 32u, ScoringPath::kDense,
                  true);
// Sparse candidate walks: gathers + per-candidate membership bits; the
// guardrail only requires these not to regress (>= 0.9x).
BENCHMARK_CAPTURE(BM_ScoreKernel, sparse_k32_scalar, 32u,
                  ScoringPath::kSparse, false);
BENCHMARK_CAPTURE(BM_ScoreKernel, sparse_k32_simd, 32u, ScoringPath::kSparse,
                  true);
BENCHMARK_CAPTURE(BM_ScoreKernel, sparse_k100_scalar, 100u,
                  ScoringPath::kSparse, false);
BENCHMARK_CAPTURE(BM_ScoreKernel, sparse_k100_simd, 100u,
                  ScoringPath::kSparse, true);

BENCHMARK_CAPTURE(BM_AdwiseAblation, full, true, true, true)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_AdwiseAblation, no_adaptive_bal, false, true, true)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_AdwiseAblation, no_degree_aware, true, false, true)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_AdwiseAblation, no_clustering, true, true, false)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_AdwiseAblation, bare, false, false, false)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_CAPTURE(BM_AdwisePartition, e2e_scalar, false)
    ->Unit(benchmark::kMillisecond)->Iterations(1);
BENCHMARK_CAPTURE(BM_AdwisePartition, e2e_simd, true)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

BENCHMARK_MAIN();
