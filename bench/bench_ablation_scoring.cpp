// Ablation: the three terms of the ADWISE scoring function (Eq. 7) —
// adaptive balancing, degree-aware replication weighting, clustering score —
// switched off one at a time on all three graph stand-ins (fixed window).
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  print_title("Ablation: scoring-function terms (fixed window w=128, k=32)");
  const double scale = env_scale(0.25);
  const NamedGraph graphs[] = {make_orkut_like(scale), make_brain_like(scale),
                               make_web_like(scale)};

  auto variant = [](const std::string& label, bool balance, bool degree,
                    bool clustering) {
    AdwiseOptions opts;
    opts.adaptive_window = false;
    opts.initial_window = 128;
    opts.adaptive_balance = balance;
    opts.lambda_init = balance ? 1.0 : 1.1;  // HDRF-recommended fixed lambda
    opts.degree_weighting = degree;
    opts.clustering_score = clustering;
    return adwise_strategy(label, opts);
  };
  const Strategy variants[] = {
      variant("full", true, true, true),
      variant("-adaptive_bal", false, true, true),
      variant("-degree_aware", true, false, true),
      variant("-clustering", true, true, false),
      variant("bare", false, false, false),
  };

  for (const NamedGraph& named : graphs) {
    print_graph_info(named);
    std::printf("%-18s %10s %8s %8s\n", "variant", "part_s", "rep", "imbal");
    for (const Strategy& strategy : variants) {
      const PartitionRun run = run_partition_single(
          named.graph, strategy, 32, StreamOrder::kShuffled);
      std::printf("%-18s %10.3f %8.3f %8.3f\n", run.label.c_str(),
                  run.seconds, run.replication, run.imbalance);
    }
  }
  return 0;
}
