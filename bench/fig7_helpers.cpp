#include "bench/fig7_helpers.h"

#include <cstdio>

#include "src/apps/pagerank.h"

namespace adwise::bench {

namespace {

// Measures the HDRF wall latency once; the ADWISE latency preferences are
// expressed as multiples of it (the paper's practical guideline, §IV-A).
double reference_latency(const Graph& graph, const LoadingConfig& config) {
  const Strategy hdrf = baseline_strategy("hdrf", "HDRF(ref)");
  return run_partition(graph, hdrf, config).seconds;
}

AdwiseOptions adwise_base(bool clustering_score) {
  AdwiseOptions opts;
  opts.clustering_score = clustering_score;
  opts.max_window = 1 << 14;
  return opts;
}

}  // namespace

void run_pagerank_figure(const PageRankFigure& figure) {
  print_title(figure.title);
  print_graph_info(figure.graph);
  LoadingConfig config;
  const double ref = reference_latency(figure.graph.graph, config);
  std::printf("reference single-edge (HDRF) latency: %.3f s\n", ref);

  std::vector<std::string> block_names;
  for (std::uint32_t b = 1; b <= figure.blocks; ++b) {
    block_names.push_back(std::to_string(b * figure.iterations_per_block) +
                          "it");
  }
  print_stacked_header(block_names);

  const auto strategies = paper_strategies(
      ref, figure.latency_multiples, adwise_base(figure.clustering_score));
  for (const Strategy& strategy : strategies) {
    const PartitionRun run =
        run_partition(figure.graph.graph, strategy, config);
    const WorkloadResult workload = run_pagerank_blocks(
        figure.graph.graph, run.assignments, paper_cluster(), figure.blocks,
        figure.iterations_per_block);
    print_stacked_row(run, workload.block_seconds);
  }
}

void run_replication_figure(const ReplicationFigure& figure) {
  print_title(figure.title);
  print_graph_info(figure.graph);
  LoadingConfig config;
  const double ref = reference_latency(figure.graph.graph, config);
  std::printf("reference single-edge (HDRF) latency: %.3f s\n", ref);
  std::printf("%-18s %10s %8s %8s\n", "strategy", "part_s", "rep", "imbal");

  const auto strategies = paper_strategies(
      ref, figure.latency_multiples, adwise_base(figure.clustering_score));
  for (const Strategy& strategy : strategies) {
    const PartitionRun run =
        run_partition(figure.graph.graph, strategy, config);
    std::printf("%-18s %10.3f %8.3f %8.3f\n", run.label.c_str(), run.seconds,
                run.replication, run.imbalance);
  }
}

}  // namespace adwise::bench
