// Figure 7b: PageRank on the Web stand-in (very high clustering — the regime
// where windows and the clustering score pay off most).
#include "bench/fig7_helpers.h"

int main() {
  using namespace adwise::bench;
  PageRankFigure figure;
  figure.title = "Figure 7b: PageRank on web-like (k=32, z=8, spread=4)";
  figure.graph = adwise::make_web_like(env_scale(0.5));
  figure.blocks = 3;
  figure.iterations_per_block = 100;
  run_pagerank_figure(figure);
  return 0;
}
