// Figure 1: the landscape of vertex-cut partitioners — partitioning latency
// versus quality, from hashing (fast, poor) through the streaming scoring
// family to the all-edge NE heuristic (slow, strong), with ADWISE sweeping
// the space in between via its latency preference.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/partition/refine.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  const NamedGraph named = make_brain_like(env_scale(0.4));
  print_title("Figure 1: partitioning latency vs. quality landscape (k=32)");
  print_graph_info(named);
  std::printf("%-18s %10s %8s %8s\n", "algorithm", "part_s", "rep", "imbal");

  auto report = [&](const Strategy& strategy) {
    const PartitionRun run = run_partition_single(
        named.graph, strategy, 32, StreamOrder::kShuffled);
    std::printf("%-18s %10.3f %8.3f %8.3f\n", run.label.c_str(), run.seconds,
                run.replication, run.imbalance);
  };

  for (const char* name : {"hash", "1d", "grid", "dbh", "greedy", "hdrf"}) {
    report(baseline_strategy(name));
  }
  for (const std::uint64_t window : {16ull, 128ull, 1024ull}) {
    AdwiseOptions opts;
    opts.adaptive_window = false;
    opts.initial_window = window;
    report(adwise_strategy("adwise w=" + std::to_string(window), opts));
  }
  report(baseline_strategy("ne", "ne (all-edge)"));

  // The iterative family (Ja-Be-Ja-VC / H-move stand-in): HDRF start plus
  // hill-climbing rounds over the full edge set.
  {
    const PartitionRun start = run_partition_single(
        named.graph, baseline_strategy("hdrf"), 32, StreamOrder::kShuffled);
    Stopwatch watch;
    const RefineResult refined = refine_partition(
        start.assignments, 32, named.graph.num_vertices(), {.max_rounds = 5});
    std::printf("%-18s %10.3f %8.3f %8.3f\n", "hdrf+refine",
                start.seconds + watch.elapsed_seconds(),
                refined.state.replication_degree(),
                refined.state.imbalance());
  }
  return 0;
}
