// Microbenchmark (google-benchmark): single-instance partitioning throughput
// of every strategy on a fixed R-MAT graph — the raw edges/second cost that
// the adaptive controller trades against quality.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/adwise_partitioner.h"

namespace {

using namespace adwise;

const Graph& test_graph() {
  static const Graph graph =
      make_rmat({.scale = 15, .num_edges = 200'000, .seed = 3});
  return graph;
}

void run_once(benchmark::State& state, EdgePartitioner& partitioner) {
  const Graph& graph = test_graph();
  for (auto _ : state) {
    PartitionState pstate(32, graph.num_vertices());
    VectorEdgeStream stream(graph.edges());
    partitioner.partition(stream, pstate);
    benchmark::DoNotOptimize(pstate.replication_degree());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * graph.num_edges()));
}

void BM_Baseline(benchmark::State& state, const char* name) {
  auto partitioner = make_baseline_partitioner(name, 32, 1);
  run_once(state, *partitioner);
}

void BM_Adwise(benchmark::State& state, std::uint64_t window, bool lazy) {
  AdwiseOptions opts;
  opts.adaptive_window = false;
  opts.initial_window = window;
  opts.lazy_traversal = lazy;
  AdwisePartitioner partitioner(opts);
  run_once(state, partitioner);
}

}  // namespace

BENCHMARK_CAPTURE(BM_Baseline, hash, "hash");
BENCHMARK_CAPTURE(BM_Baseline, grid, "grid");
BENCHMARK_CAPTURE(BM_Baseline, dbh, "dbh");
BENCHMARK_CAPTURE(BM_Baseline, greedy, "greedy");
BENCHMARK_CAPTURE(BM_Baseline, hdrf, "hdrf");
BENCHMARK_CAPTURE(BM_Adwise, w1, 1, true);
BENCHMARK_CAPTURE(BM_Adwise, w16_lazy, 16, true);
BENCHMARK_CAPTURE(BM_Adwise, w64_lazy, 64, true);
BENCHMARK_CAPTURE(BM_Adwise, w64_eager, 64, false);

BENCHMARK_MAIN();
