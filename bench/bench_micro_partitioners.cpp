// Microbenchmark (google-benchmark): single-instance partitioning throughput
// of every strategy on a fixed R-MAT graph — the raw edges/second cost that
// the adaptive controller trades against quality.
//
// The ADWISE captures sweep the hot-path implementation axes introduced by
// the sparse rebuild: sparse vs. dense placement scoring and heap vs. linear
// candidate selection. Each run reports the partitioner's own counters —
// score computations and candidate partitions actually scanned — so the
// sparsity win is tracked alongside raw edges/second.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/adwise_partitioner.h"

namespace {

using namespace adwise;

const Graph& test_graph() {
  static const Graph graph =
      make_rmat({.scale = 15, .num_edges = 200'000, .seed = 3});
  return graph;
}

// Smaller stream for the eager captures: eager traversal rescans the whole
// window per assignment (w * m placements), so the 200k-edge graph would
// cost minutes per iteration at w = 256.
const Graph& eager_graph() {
  static const Graph graph =
      make_rmat({.scale = 13, .num_edges = 40'000, .seed = 3});
  return graph;
}

void run_once(benchmark::State& state, EdgePartitioner& partitioner,
              const Graph& graph) {
  for (auto _ : state) {
    PartitionState pstate(32, graph.num_vertices());
    VectorEdgeStream stream(graph.edges());
    partitioner.partition(stream, pstate);
    benchmark::DoNotOptimize(pstate.replication_degree());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * graph.num_edges()));
}

void BM_Baseline(benchmark::State& state, const char* name) {
  auto partitioner = make_baseline_partitioner(name, 32, 1);
  run_once(state, *partitioner, test_graph());
}

void report_adwise_counters(benchmark::State& state,
                            const AdwisePartitioner& partitioner);

void BM_Adwise(benchmark::State& state, const AdwiseOptions& opts) {
  AdwisePartitioner partitioner(opts);
  run_once(state, partitioner, test_graph());
  report_adwise_counters(state, partitioner);
}

void BM_AdwiseEager(benchmark::State& state, const AdwiseOptions& opts) {
  AdwisePartitioner partitioner(opts);
  run_once(state, partitioner, eager_graph());
  report_adwise_counters(state, partitioner);
}

void report_adwise_counters(benchmark::State& state,
                            const AdwisePartitioner& partitioner) {
  // Hot-path counters from the last run: how many g(e, p) evaluations the
  // traversal needed, and how many partitions each evaluation touched
  // (k = 32 on the dense path, the candidate-set size on the sparse path).
  const auto& report = partitioner.last_report();
  state.counters["score_comps"] =
      benchmark::Counter(static_cast<double>(report.score_computations));
  state.counters["cand_parts"] =
      benchmark::Counter(static_cast<double>(report.candidate_partitions));
  state.counters["parts_per_score"] =
      report.score_computations > 0
          ? static_cast<double>(report.candidate_partitions) /
                static_cast<double>(report.score_computations)
          : 0.0;
  // kAuto's per-call crossover split (pinned paths report one side only).
  state.counters["dense_places"] =
      benchmark::Counter(static_cast<double>(report.dense_placements));
  state.counters["sparse_places"] =
      benchmark::Counter(static_cast<double>(report.sparse_placements));
}

AdwiseOptions adwise_opts(std::uint64_t window, bool lazy, bool sparse = true,
                          bool heap = true) {
  AdwiseOptions opts;
  opts.adaptive_window = false;
  opts.initial_window = window;
  opts.lazy_traversal = lazy;
  opts.scoring_path = sparse ? ScoringPath::kAuto : ScoringPath::kDense;
  opts.heap_selection = heap;
  return opts;
}

// Parallel batch scoring: threads includes the calling thread, so 4 means
// 3 pool workers + main (the CI guardrail compares these against the
// single-threaded captures on 4+ core runners).
AdwiseOptions adwise_opts_mt(std::uint64_t window, bool lazy,
                             std::uint32_t threads) {
  AdwiseOptions opts = adwise_opts(window, lazy);
  opts.num_score_threads = threads;
  return opts;
}

}  // namespace

BENCHMARK_CAPTURE(BM_Baseline, hash, "hash");
BENCHMARK_CAPTURE(BM_Baseline, grid, "grid");
BENCHMARK_CAPTURE(BM_Baseline, dbh, "dbh");
BENCHMARK_CAPTURE(BM_Baseline, greedy, "greedy");
BENCHMARK_CAPTURE(BM_Baseline, hdrf, "hdrf");
BENCHMARK_CAPTURE(BM_Adwise, w1, adwise_opts(1, true));
BENCHMARK_CAPTURE(BM_Adwise, w16_lazy, adwise_opts(16, true));
// The headline capture (sparse scoring + heap selection, the defaults)
// against the dense/linear reference paths on the same window.
BENCHMARK_CAPTURE(BM_Adwise, w64_lazy, adwise_opts(64, true));
BENCHMARK_CAPTURE(BM_Adwise, w64_lazy_dense,
                  adwise_opts(64, true, /*sparse=*/false, /*heap=*/false));
BENCHMARK_CAPTURE(BM_Adwise, w64_lazy_linear,
                  adwise_opts(64, true, /*sparse=*/true, /*heap=*/false));
BENCHMARK_CAPTURE(BM_Adwise, w64_eager, adwise_opts(64, false));
BENCHMARK_CAPTURE(BM_Adwise, w64_eager_dense,
                  adwise_opts(64, false, /*sparse=*/false));
BENCHMARK_CAPTURE(BM_Adwise, w256_lazy, adwise_opts(256, true));
BENCHMARK_CAPTURE(BM_Adwise, w256_lazy_dense,
                  adwise_opts(256, true, /*sparse=*/false, /*heap=*/false));
// Thread-pooled batch rescoring against the single-threaded captures
// (bit-identical placements for any thread count). The lazy captures record
// the Amdahl reality of the heap path — after PR 1 only a few percent of
// its scoring work arrives in batches large enough to fan out, so the
// speedup there is modest. The eager captures are where batches are whole
// windows (256 slots per selection) and the pool multiplies throughput;
// tools/check_bench_guardrail.py enforces the >= 1.8x eager speedup in CI
// on 4+ core runners and records the lazy ratios.
BENCHMARK_CAPTURE(BM_Adwise, w64_lazy_mt4, adwise_opts_mt(64, true, 4))
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_Adwise, w256_lazy_mt4, adwise_opts_mt(256, true, 4))
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_AdwiseEager, w256_eager, adwise_opts(256, false))
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_AdwiseEager, w256_eager_mt4, adwise_opts_mt(256, false, 4))
    ->UseRealTime();

BENCHMARK_MAIN();
