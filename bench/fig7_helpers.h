// Shared drivers for the Figure 7 panels: each panel binary supplies the
// graph and workload parameters; these helpers execute the full paper
// pipeline (parallel partitioning with a latency sweep, then the workload on
// the simulated cluster) and print the stacked-latency rows.
#pragma once

#include <string>

#include "bench/bench_common.h"

namespace adwise::bench {

struct PageRankFigure {
  std::string title;
  NamedGraph graph;
  bool clustering_score = true;  // the paper disables CS on Orkut
  std::uint32_t blocks = 3;
  std::uint32_t iterations_per_block = 100;
  std::vector<double> latency_multiples = {2.0, 4.0, 8.0, 16.0};
};

// Fig. 7a/7b/7c: PageRank stacked latency.
void run_pagerank_figure(const PageRankFigure& figure);

struct ReplicationFigure {
  std::string title;
  NamedGraph graph;
  bool clustering_score = true;
  std::vector<double> latency_multiples = {2.0, 4.0, 8.0};
};

// Fig. 7g/7h/7i: replication degree vs. invested partitioning latency.
void run_replication_figure(const ReplicationFigure& figure);

}  // namespace adwise::bench
