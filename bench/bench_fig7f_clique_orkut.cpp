// Figure 7f: random-walk clique search (sizes 3/4/5, probabilistic flooding
// P=0.5, ten random starts) on the Orkut stand-in.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/clique.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  const NamedGraph named = make_orkut_like(env_scale(0.35));
  print_title("Figure 7f: Clique search (3/4/5) on orkut-like");
  print_graph_info(named);
  LoadingConfig config;
  const Strategy ref = baseline_strategy("hdrf", "HDRF(ref)");
  const double ref_seconds =
      run_partition(named.graph, ref, config).seconds;
  std::printf("reference single-edge (HDRF) latency: %.3f s\n", ref_seconds);
  print_stacked_header({"size3", "size4", "size5"});

  CliqueSearchConfig search;  // defaults: sizes {3,4,5}, P=0.5
  // The paper repeats each size ten times from ten random vertices; fold the
  // repetitions into one run with 100 start events.
  search.starts = 100;
  search.max_pending = 128;

  AdwiseOptions adwise_base;
  adwise_base.clustering_score = false;  // per the paper, off for Orkut
  adwise_base.max_window = 1 << 14;
  for (const Strategy& strategy :
       paper_strategies(ref_seconds, {2.0, 4.0, 8.0}, adwise_base)) {
    const PartitionRun run = run_partition(named.graph, strategy, config);
    const WorkloadResult workload = run_clique_searches(
        named.graph, run.assignments, paper_cluster(), search);
    print_stacked_row(run, workload.block_seconds);
  }
  return 0;
}
