// Figure 8: efficacy of the spotlight optimization — replication degree as
// the spread of z=8 parallel partitioners shrinks from 32 (conventional
// parallel loading) to 4 (disjoint partition groups), for DBH, HDRF and
// ADWISE — followed by the speedup-vs-instances curve with genuinely
// concurrent loading: the graph is sharded into z .adw chunk files and
// every instance streams its own shard on its own thread
// (run_spotlight_sharded), so per-instance I/O, decode and scoring overlap.
// Serial and threaded runs are bit-identical; only wall-clock moves.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/core/adwise_partitioner.h"
#include "src/io/adw_shards.h"

namespace {

using namespace adwise;
using namespace adwise::bench;

double min_of(const std::vector<double>& v) {
  double m = v.empty() ? 0.0 : v[0];
  for (const double x : v) m = std::min(m, x);
  return m;
}

double max_of(const std::vector<double>& v) {
  double m = 0.0;
  for (const double x : v) m = std::max(m, x);
  return m;
}

double sum_of(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) s += x;
  return s;
}

// One sharded spotlight run over the pre-written manifest; per-instance
// AdwisePartitioner reports (when the strategy builds them) are merged
// deterministically outside the timed region via on_instance_done.
SpotlightResult run_sharded(const std::string& manifest, const Graph& graph,
                            const Strategy& strategy, std::uint32_t z,
                            bool threads,
                            AdwisePartitioner::Report* merged_report) {
  SpotlightOptions opts;
  opts.k = 32;
  opts.num_partitioners = z;
  opts.spread = 32 / z;
  opts.run_threads = threads;
  if (merged_report != nullptr) {
    opts.on_instance_done = [merged_report](std::uint32_t,
                                            EdgePartitioner& partitioner) {
      if (auto* adwise = dynamic_cast<AdwisePartitioner*>(&partitioner)) {
        merged_report->merge_from(adwise->last_report());
      }
    };
  }
  return run_spotlight_sharded(manifest, graph.num_vertices(),
                               strategy.factory, opts);
}

}  // namespace

int main() {
  const NamedGraph named = make_brain_like(env_scale(0.5));
  print_title("Figure 8: spotlight spread sweep on brain-like (k=32, z=8)");
  print_graph_info(named);
  std::printf("%-18s %8s %10s %8s %8s\n", "strategy", "spread", "part_s",
              "rep", "imbal");

  AdwiseOptions adwise_opts;
  adwise_opts.adaptive_window = false;
  adwise_opts.initial_window = 64;
  const Strategy strategies[] = {
      baseline_strategy("dbh", "DBH"),
      baseline_strategy("hdrf", "HDRF"),
      adwise_strategy("ADWISE w=64", adwise_opts),
  };
  for (const Strategy& strategy : strategies) {
    for (const std::uint32_t spread : {32u, 16u, 8u, 4u}) {
      LoadingConfig config;
      config.spread = spread;
      const PartitionRun run = run_partition(named.graph, strategy, config);
      std::printf("%-18s %8u %10.3f %8.3f %8.3f\n", run.label.c_str(), spread,
                  run.seconds, run.replication, run.imbalance);
    }
  }

  // --- Sharded parallel loading: speedup vs instances, real threads ----------
  // serial_s is the summed per-instance time of a sequential run over the
  // same shards (the total work); wall_s is the max over per-instance
  // wall-clock of the threaded run (the paper's cluster-model latency), so
  // speedup = serial_s / wall_s measures what real instance threads buy on
  // this host. inst_min/inst_max expose the instance skew the near-equal
  // chunk split keeps small. Merged partitions are bit-identical either
  // way, so speedup is pure concurrency.
  print_title("Sharded .adw parallel loading (spotlight spread k/z)");
  std::printf("%-18s %4s %10s %10s %8s %8s %10s %10s\n", "strategy", "z",
              "serial_s", "wall_s", "speedup", "rep", "inst_min", "inst_max");
  const std::uint32_t shard_counts[] = {2u, 4u, 8u};
  auto manifest_for = [](std::uint32_t z) {
    return "bench_fig8_z" + std::to_string(z) + ".adws";
  };
  // Shard each z once up front; every strategy reads the same files.
  for (const std::uint32_t z : shard_counts) {
    write_sharded_adw(manifest_for(z), named.graph.edges(), z);
  }
  for (const Strategy& strategy : strategies) {
    for (const std::uint32_t z : shard_counts) {
      const std::string manifest = manifest_for(z);
      const auto serial = run_sharded(manifest, named.graph, strategy, z,
                                      /*threads=*/false, nullptr);
      AdwisePartitioner::Report threaded_report;
      const auto threaded = run_sharded(manifest, named.graph, strategy, z,
                                        /*threads=*/true, &threaded_report);
      const double serial_total = sum_of(serial.instance_seconds);
      std::printf("%-18s %4u %10.3f %10.3f %7.2fx %8.3f %10.4f %10.4f\n",
                  strategy.label.c_str(), z, serial_total,
                  threaded.wall_seconds,
                  threaded.wall_seconds > 0
                      ? serial_total / threaded.wall_seconds
                      : 0.0,
                  threaded.merged.replication_degree(),
                  min_of(threaded.instance_seconds),
                  max_of(threaded.instance_seconds));
      if (threaded_report.assignments > 0) {
        std::printf(
            "%-18s %4s   merged reports: %llu assignments, %llu score "
            "computations, parallel_fraction %.2f\n",
            "", "",
            static_cast<unsigned long long>(threaded_report.assignments),
            static_cast<unsigned long long>(
                threaded_report.score_computations),
            threaded_report.parallel_fraction());
      }
    }
  }
  for (const std::uint32_t z : shard_counts) {
    for (std::uint32_t i = 0; i < z; ++i) {
      std::remove(adw_shard_path(manifest_for(z), i).c_str());
    }
    std::remove(manifest_for(z).c_str());
  }
  return 0;
}
