// Figure 8: efficacy of the spotlight optimization — replication degree as
// the spread of z=8 parallel partitioners shrinks from 32 (conventional
// parallel loading) to 4 (disjoint partition groups), for DBH, HDRF and
// ADWISE.
#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  const NamedGraph named = make_brain_like(env_scale(0.5));
  print_title("Figure 8: spotlight spread sweep on brain-like (k=32, z=8)");
  print_graph_info(named);
  std::printf("%-18s %8s %10s %8s %8s\n", "strategy", "spread", "part_s",
              "rep", "imbal");

  AdwiseOptions adwise_opts;
  adwise_opts.adaptive_window = false;
  adwise_opts.initial_window = 64;
  const Strategy strategies[] = {
      baseline_strategy("dbh", "DBH"),
      baseline_strategy("hdrf", "HDRF"),
      adwise_strategy("ADWISE w=64", adwise_opts),
  };
  for (const Strategy& strategy : strategies) {
    for (const std::uint32_t spread : {32u, 16u, 8u, 4u}) {
      LoadingConfig config;
      config.spread = spread;
      const PartitionRun run = run_partition(named.graph, strategy, config);
      std::printf("%-18s %8u %10.3f %8.3f %8.3f\n", run.label.c_str(), spread,
                  run.seconds, run.replication, run.imbalance);
    }
  }
  return 0;
}
