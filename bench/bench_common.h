// Shared harness for the per-figure bench binaries (DESIGN.md §5).
//
// Every bench runs the paper's parallel-loading setup by default: z = 8
// partitioner instances, k = 32 partitions, spotlight spread 4 (§IV,
// "Experimental Setup"), prints the same rows/series as the corresponding
// figure, and scales its workload with the ADWISE_BENCH_SCALE environment
// variable (default 1.0).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/adwise_partitioner.h"
#include "src/engine/cluster_model.h"
#include "src/graph/edge_stream.h"
#include "src/graph/generators.h"
#include "src/obs/metrics.h"
#include "src/partition/registry.h"
#include "src/partition/spotlight.h"

namespace adwise::bench {

// ADWISE_BENCH_SCALE (e.g. "2.0") multiplied by base; clamped to [0.01, 100].
[[nodiscard]] double env_scale(double base = 1.0);

// A named way of constructing partitioner instances.
struct Strategy {
  std::string label;
  PartitionerFactory factory;
};

[[nodiscard]] Strategy baseline_strategy(const std::string& name,
                                         const std::string& label = "");
[[nodiscard]] Strategy adwise_strategy(const std::string& label,
                                       const AdwiseOptions& options);

// Convenience: the two paper baselines plus an ADWISE latency sweep where
// each preference is `multiple x reference_seconds` (the paper's guideline
// of investing a small multiple of the single-edge latency).
[[nodiscard]] std::vector<Strategy> paper_strategies(
    double reference_seconds, const std::vector<double>& multiples,
    const AdwiseOptions& adwise_base);

struct LoadingConfig {
  std::uint32_t k = 32;
  std::uint32_t z = 8;       // parallel partitioner instances
  std::uint32_t spread = 4;  // spotlight spread (k/z: disjoint groups)
  StreamOrder order = StreamOrder::kNatural;
  std::uint64_t seed = 1;
  // Execute instances on real threads (bit-identical results; per-instance
  // wall-clock becomes genuinely concurrent).
  bool run_threads = false;
  // Forwarded to SpotlightOptions::on_instance_done (merge telemetry).
  std::function<void(std::uint32_t, EdgePartitioner&)> on_instance_done;
};

struct PartitionRun {
  std::string label;
  double seconds = 0.0;       // parallel wall latency (max over instances)
  double replication = 0.0;   // Eq. 1 on the merged state
  double imbalance = 0.0;     // (max-min)/max on the merged state
  std::vector<double> instance_seconds;  // per-instance wall-clock
  std::vector<Assignment> assignments;
};

// Orders the edges, runs the strategy under the parallel loading model and
// returns the merged run.
[[nodiscard]] PartitionRun run_partition(const Graph& graph,
                                         const Strategy& strategy,
                                         const LoadingConfig& config);

// Single-instance variant (z = 1, spread = k): the algorithm-landscape view.
[[nodiscard]] PartitionRun run_partition_single(const Graph& graph,
                                                const Strategy& strategy,
                                                std::uint32_t k,
                                                StreamOrder order,
                                                std::uint64_t seed = 1);

// The paper's cluster (8 machines, 1 GbE) — used by all engine benches.
[[nodiscard]] ClusterModel paper_cluster();

// Flattens a metrics-registry snapshot into (name, value) pairs ready for
// google-benchmark's state.counters — so a bench capture can publish run
// internals (prefetch-wait ns, commit latency, ...) into the guardrail
// JSON. Histograms contribute "<name>.sum" and "<name>.count". Kept free
// of any google-benchmark dependency so the figure benches can link
// bench_common untouched. Empty under -DADWISE_OBS=OFF.
[[nodiscard]] std::vector<std::pair<std::string, double>> metric_counters(
    const obs::MetricsRegistry& registry);

// --- Output helpers -----------------------------------------------------------

void print_title(const std::string& title);
void print_graph_info(const NamedGraph& graph);

// Stacked-latency row (Fig. 7a-f style): partitioning latency followed by
// cumulative totals after each processing block.
void print_stacked_header(const std::vector<std::string>& block_names);
void print_stacked_row(const PartitionRun& run,
                       const std::vector<double>& block_seconds);

}  // namespace adwise::bench
