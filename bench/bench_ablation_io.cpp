// Ablation (google-benchmark): out-of-core stream throughput — text vs
// binary (.adw, with and without the prefetch worker) vs in-memory, on an
// R-MAT capture, plus end-to-end partitioning and disk-backed restreaming
// through each stream.
//
// The CI guardrail (tools/check_bench_guardrail.py) consumes this binary's
// JSON output and fails when BM_StreamDrain/binary_prefetch falls below
// 0.8x BM_StreamDrain/in_memory — the acceptance bar for the out-of-core
// subsystem: reading from disk must cost at most ~20% of the in-memory
// edge rate, with parse/decode overlapped by the prefetch worker.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "bench/bench_common.h"
#include "src/common/clock.h"
#include "src/common/watchdog.h"
#include "src/graph/file_stream.h"
#include "src/io/adw_format.h"
#include "src/io/binary_stream.h"
#include "src/obs/obs_sink.h"
#include "src/partition/checkpoint_run.h"
#include "src/partition/restream.h"

namespace {

using namespace adwise;

// One on-disk capture shared by every benchmark: an R-MAT graph written as
// both a text edge list and an .adw file in the temp directory. Scaled by
// ADWISE_BENCH_SCALE like the figure benches.
struct IoFixture {
  Graph graph;
  std::string text_path;
  std::string adw_path;

  IoFixture() {
    const auto num_edges =
        static_cast<std::size_t>(400'000 * bench::env_scale());
    graph = make_rmat({.scale = 16, .num_edges = num_edges, .seed = 3});
    const std::string base = "bench_ablation_io_rmat";
    text_path = base + ".txt";
    adw_path = base + ".adw";
    {
      std::ofstream out(text_path);
      for (const Edge& e : graph.edges()) out << e.u << ' ' << e.v << '\n';
    }
    write_adw_file(adw_path, graph.edges());
  }

  ~IoFixture() {
    std::remove(text_path.c_str());
    std::remove(adw_path.c_str());
  }
};

const IoFixture& fixture() {
  static const IoFixture f;
  return f;
}

enum class StreamKind {
  kInMemory,
  kText,
  kBinary,
  kBinaryPrefetch,
  kBinaryPrefetchObs,  // prefetch stream with a metrics sink attached
};

// Registry/sink for the obs-attached capture. Static so they outlive every
// stream wired to them; the registry aggregates across iterations, which is
// what the per-run counters exported below want.
obs::ObsSink& obs_drain_sink() {
  static obs::MetricsRegistry registry;
  static obs::ObsSink sink = [] {
    obs::ObsSink s;
    s.metrics = &registry;
    return s;
  }();
  return sink;
}

std::unique_ptr<RewindableEdgeStream> make_stream(StreamKind kind) {
  const IoFixture& f = fixture();
  switch (kind) {
    case StreamKind::kInMemory:
      return std::make_unique<VectorEdgeStream>(f.graph.edges());
    case StreamKind::kText:
      return std::make_unique<FileEdgeStream>(f.text_path,
                                              f.graph.num_edges());
    case StreamKind::kBinary:
      return std::make_unique<BinaryEdgeStream>(
          f.adw_path, BinaryEdgeStream::Options{.prefetch = false});
    case StreamKind::kBinaryPrefetch:
      return std::make_unique<BinaryEdgeStream>(
          f.adw_path, BinaryEdgeStream::Options{.prefetch = true});
    case StreamKind::kBinaryPrefetchObs: {
      BinaryEdgeStream::Options options{.prefetch = true};
      options.obs = &obs_drain_sink();
      return std::make_unique<BinaryEdgeStream>(f.adw_path, options);
    }
  }
  return nullptr;
}

// Raw stream drain: the pure decode/IO cost with no partitioner attached.
// The plain binary_prefetch capture doubles as the "obs enabled but idle"
// baseline (instrumentation compiled in, no sink attached — every site
// costs one predictable branch); binary_prefetch_obs attaches a live
// metrics sink, and the CI guardrail requires it to stay within 2% of the
// idle rate (tools/check_bench_guardrail.py, OBS_MIN_RATIO).
void BM_StreamDrain(benchmark::State& state, StreamKind kind) {
  const std::size_t n = fixture().graph.num_edges();
  const std::int64_t drain_start_ns = monotonic_now_ns();
  for (auto _ : state) {
    auto stream = make_stream(kind);
    Edge e;
    std::size_t seen = 0;
    while (stream->next(e)) {
      benchmark::DoNotOptimize(e);
      ++seen;
    }
    if (seen != n) state.SkipWithError("stream delivered wrong edge count");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * n));
  if (kind == StreamKind::kBinaryPrefetchObs && obs_drain_sink().metrics) {
    // Publish the registry internals into the guardrail JSON, plus the
    // share of wall time the consumer spent waiting on the prefetcher.
    const double drain_ns =
        static_cast<double>(monotonic_now_ns() - drain_start_ns);
    for (const auto& [name, value] :
         bench::metric_counters(*obs_drain_sink().metrics)) {
      state.counters[name] = benchmark::Counter(value);
    }
    const double wait_ns =
        state.counters.count("stream.prefetch_wait_ns") != 0
            ? static_cast<double>(state.counters["stream.prefetch_wait_ns"])
            : 0.0;
    state.counters["prefetch_wait_share"] =
        benchmark::Counter(drain_ns > 0.0 ? wait_ns / drain_ns : 0.0);
  }
}

// End-to-end single-pass partitioning (HDRF: cheap enough that stream cost
// is visible, unlike ADWISE where scoring dominates).
void BM_HdrfPartition(benchmark::State& state, StreamKind kind) {
  const IoFixture& f = fixture();
  for (auto _ : state) {
    auto partitioner = make_baseline_partitioner("hdrf", 32);
    PartitionState pstate(32, f.graph.num_vertices());
    auto stream = make_stream(kind);
    partitioner->partition(*stream, pstate);
    benchmark::DoNotOptimize(pstate.replication_degree());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * f.graph.num_edges()));
}

// End-to-end partitioning with durable checkpoints at the CLI's default
// interval and async I/O (the CLI configuration): the partitioning thread
// pays only the state snapshot, the writer thread the CRC/write/fsync/
// rename. A live watchdog is armed over the writer exactly as
// `partition_file --watchdog-ms 2000` would, so the guardrail also prices
// the heartbeat stores on the hot path. The CI guardrail requires >= 0.9x
// the rate of the uncheckpointed BM_HdrfPartition on the same stream.
void BM_HdrfPartitionCheckpointed(benchmark::State& state, StreamKind kind) {
  const IoFixture& f = fixture();
  const std::string ckpt_path = "bench_ablation_io_rmat.adwk";
  Watchdog::Options wopts;
  wopts.stall_timeout = std::chrono::milliseconds(2000);
  wopts.poll_interval = std::chrono::milliseconds(500);
  Watchdog watchdog(wopts);
  watchdog.start();
  for (auto _ : state) {
    auto partitioner = make_baseline_partitioner("hdrf", 32);
    PartitionState pstate(32, f.graph.num_vertices());
    auto stream = make_stream(kind);
    CheckpointRunOptions copts;
    copts.checkpoint_path = ckpt_path;
    copts.every = std::uint64_t{1} << 16;
    copts.async_io = true;
    copts.watchdog = &watchdog;
    run_with_checkpoints(*partitioner, *stream, pstate, {}, copts);
    benchmark::DoNotOptimize(pstate.replication_degree());
  }
  std::remove(ckpt_path.c_str());
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * f.graph.num_edges()));
}

// Disk-backed restreaming: 2 passes, rewinding the same stream. Items are
// edges *streamed* (2x the edge count) so rates compare with the above.
void BM_Restream2(benchmark::State& state, StreamKind kind) {
  const IoFixture& f = fixture();
  for (auto _ : state) {
    auto stream = make_stream(kind);
    const auto result = restream_partition(
        *stream, f.graph.num_vertices(), 32,
        [] { return make_baseline_partitioner("hdrf", 32); }, 2,
        [](const Edge&, PartitionId) {});
    benchmark::DoNotOptimize(result.pass_replication.back());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * 2 *
                                                    f.graph.num_edges()));
}

BENCHMARK_CAPTURE(BM_StreamDrain, in_memory, StreamKind::kInMemory);
BENCHMARK_CAPTURE(BM_StreamDrain, text, StreamKind::kText);
BENCHMARK_CAPTURE(BM_StreamDrain, binary, StreamKind::kBinary);
BENCHMARK_CAPTURE(BM_StreamDrain, binary_prefetch, StreamKind::kBinaryPrefetch);
BENCHMARK_CAPTURE(BM_StreamDrain, binary_prefetch_obs,
                  StreamKind::kBinaryPrefetchObs);

BENCHMARK_CAPTURE(BM_HdrfPartition, in_memory, StreamKind::kInMemory);
BENCHMARK_CAPTURE(BM_HdrfPartition, text, StreamKind::kText);
BENCHMARK_CAPTURE(BM_HdrfPartition, binary_prefetch,
                  StreamKind::kBinaryPrefetch);
BENCHMARK_CAPTURE(BM_HdrfPartitionCheckpointed, binary_prefetch,
                  StreamKind::kBinaryPrefetch);

BENCHMARK_CAPTURE(BM_Restream2, in_memory, StreamKind::kInMemory);
BENCHMARK_CAPTURE(BM_Restream2, binary_prefetch, StreamKind::kBinaryPrefetch);

}  // namespace

BENCHMARK_MAIN();
