// Figure 7i: replication degree vs. invested partitioning latency on the
// Orkut stand-in (clustering score off, per the paper).
#include "bench/fig7_helpers.h"

int main() {
  using namespace adwise::bench;
  ReplicationFigure figure;
  figure.title = "Figure 7i: replication degree on orkut-like (k=32)";
  figure.graph = adwise::make_orkut_like(env_scale(0.5));
  figure.clustering_score = false;
  figure.latency_multiples = {2.0, 4.0, 8.0, 16.0};
  run_replication_figure(figure);
  return 0;
}
