// Ablation: lazy window traversal (§III-B) vs. eager full-window rescoring —
// same windows, same scoring; measures the latency the candidate set saves
// and the quality it costs.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/adwise_partitioner.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  const NamedGraph named = make_brain_like(env_scale(0.25));
  print_title("Ablation: lazy vs. eager window traversal (k=32)");
  print_graph_info(named);
  std::printf("%-10s %-8s %10s %8s %14s\n", "window", "mode", "part_s", "rep",
              "score_computs");

  for (const std::uint64_t window : {32ull, 128ull, 512ull}) {
    for (const bool lazy : {true, false}) {
      AdwiseOptions opts;
      opts.adaptive_window = false;
      opts.initial_window = window;
      opts.lazy_traversal = lazy;
      AdwisePartitioner partitioner(opts);
      PartitionState state(32, named.graph.num_vertices());
      const auto edges =
          ordered_edges(named.graph, StreamOrder::kShuffled, 1);
      VectorEdgeStream stream(edges);
      Stopwatch watch;
      partitioner.partition(stream, state);
      const double seconds = watch.elapsed_seconds();
      std::printf("%-10llu %-8s %10.3f %8.3f %14llu\n",
                  static_cast<unsigned long long>(window),
                  lazy ? "lazy" : "eager", seconds,
                  state.replication_degree(),
                  static_cast<unsigned long long>(
                      partitioner.last_report().score_computations));
    }
  }
  return 0;
}
