// Ablation (google-benchmark): the lazy hot path's parallel fraction —
// batched refill classification (BatchedRefill off/exact/full) crossed with
// serial vs. thread-pooled scoring, at a fixed window and across adaptive
// window growth. (The lazy-vs-eager traversal ablation lives in
// bench_micro_partitioners' w64/w256 eager captures.)
//
// Each capture reports the partitioner's batch telemetry: the batch-size
// histogram of every score_batch() pass, the share of score computations
// executed in pool batches (parallel_fraction), the self-adapted
// batch-cutoff / drain thresholds, and replication degree as the quality
// pin. The CI guardrail (tools/check_bench_guardrail.py --lazy) consumes
// this binary's JSON: it records the parallel fractions every run and —
// under ADWISE_ENFORCE_MT_SPEEDUP=1 on 4+ core runners — gates the lazy
// mt4 end-to-end speedup (best batched mt4 capture vs. w256_off) at 1.3x.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/adwise_partitioner.h"

namespace {

using namespace adwise;

const Graph& test_graph() {
  static const Graph graph = make_rmat(
      {.scale = 14,
       .num_edges = static_cast<std::size_t>(100'000 * bench::env_scale()),
       .seed = 3});
  return graph;
}

// Sums histogram buckets [lo, hi) — bucket i holds batches of size in
// [2^i, 2^(i+1)).
double hist_range(const AdwisePartitioner::Report& report, std::size_t lo,
                  std::size_t hi) {
  double total = 0.0;
  for (std::size_t i = lo;
       i < std::min<std::size_t>(hi, report.batch_size_hist.size()); ++i) {
    total += static_cast<double>(report.batch_size_hist[i]);
  }
  return total;
}

void report_batch_counters(benchmark::State& state,
                           const AdwisePartitioner& partitioner,
                           double replication) {
  const auto& r = partitioner.last_report();
  state.counters["parallel_fraction"] = r.parallel_fraction();
  state.counters["score_comps"] = static_cast<double>(r.score_computations);
  state.counters["batch_items"] = static_cast<double>(r.batch_items);
  state.counters["pool_items"] = static_cast<double>(r.pool_batch_items);
  state.counters["refill_items"] = static_cast<double>(r.refill_batch_items);
  state.counters["rescores_per_edge"] =
      r.assignments > 0 ? static_cast<double>(r.score_computations) /
                              static_cast<double>(r.assignments)
                        : 0.0;
  // Batch-size histogram, coarsened to the columns the guardrail prints.
  state.counters["batches_1"] = hist_range(r, 0, 1);
  state.counters["batches_2_3"] = hist_range(r, 1, 2);
  state.counters["batches_4_15"] = hist_range(r, 2, 4);
  state.counters["batches_16_63"] = hist_range(r, 4, 6);
  state.counters["batches_64_255"] = hist_range(r, 6, 8);
  state.counters["batches_256p"] = hist_range(r, 8, r.batch_size_hist.size());
  // Where the self-adapting thresholds settled.
  state.counters["final_cutoff"] = static_cast<double>(r.final_batch_cutoff);
  state.counters["cutoff_adapts"] =
      static_cast<double>(r.batch_cutoff_adaptations);
  state.counters["drain_budget"] = static_cast<double>(r.final_drain_budget);
  state.counters["sweep_interval"] =
      static_cast<double>(r.final_sweep_interval);
  state.counters["drain_adapts"] = static_cast<double>(r.drain_adaptations);
  state.counters["replication"] = replication;
}

void BM_LazyBatch(benchmark::State& state, const AdwiseOptions& opts) {
  const Graph& graph = test_graph();
  AdwisePartitioner partitioner(opts);
  double replication = 0.0;
  for (auto _ : state) {
    PartitionState pstate(32, graph.num_vertices());
    VectorEdgeStream stream(graph.edges());
    partitioner.partition(stream, pstate);
    replication = pstate.replication_degree();
    benchmark::DoNotOptimize(replication);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * graph.num_edges()));
  report_batch_counters(state, partitioner, replication);
}

AdwiseOptions lazy_opts(BatchedRefill refill, std::uint32_t threads,
                        bool adaptive_window = false) {
  AdwiseOptions opts;
  opts.adaptive_window = adaptive_window;
  opts.initial_window = adaptive_window ? 1 : 256;
  opts.max_window = 256;
  opts.lazy_traversal = true;
  opts.batched_refill = refill;
  opts.num_score_threads = threads;
  return opts;
}

// Pinned cutoff: the adaptive controller tunes the pool cutoff to the host
// (on few-core machines it keeps small batches serial), so the pinned
// captures measure the machine-independent structural fraction — the share
// of rescore work arriving in batches >= the pinned cutoff — that a
// multicore host's adapted cutoff converges toward (fan-out overhead of a
// few microseconds against ~0.5 us/item lands the break-even near 8-16).
AdwiseOptions lazy_opts_pin(BatchedRefill refill, std::uint32_t threads,
                            std::uint64_t cutoff) {
  AdwiseOptions opts = lazy_opts(refill, threads);
  opts.adaptive_batch_cutoff = false;
  opts.parallel_batch_min = cutoff;
  return opts;
}

}  // namespace

// Fixed w = 256 (the regime the ROADMAP's ~3% lazy parallel fraction was
// measured in): off/exact are decision-identical, full trades the refill
// hysteresis for real steady-state batches.
BENCHMARK_CAPTURE(BM_LazyBatch, w256_off, lazy_opts(BatchedRefill::kOff, 0));
BENCHMARK_CAPTURE(BM_LazyBatch, w256_off_mt4,
                  lazy_opts(BatchedRefill::kOff, 4))
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_LazyBatch, w256_exact,
                  lazy_opts(BatchedRefill::kExact, 0));
BENCHMARK_CAPTURE(BM_LazyBatch, w256_exact_mt4,
                  lazy_opts(BatchedRefill::kExact, 4))
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_LazyBatch, w256_full, lazy_opts(BatchedRefill::kFull, 0));
BENCHMARK_CAPTURE(BM_LazyBatch, w256_full_mt4,
                  lazy_opts(BatchedRefill::kFull, 4))
    ->UseRealTime();
// Adaptive window 1 -> 256: the §III-A controller's growth bursts are the
// refill batches kExact can pool without changing any decision.
BENCHMARK_CAPTURE(BM_LazyBatch, grow_exact,
                  lazy_opts(BatchedRefill::kExact, 0, true));
BENCHMARK_CAPTURE(BM_LazyBatch, grow_exact_mt4,
                  lazy_opts(BatchedRefill::kExact, 4, true))
    ->UseRealTime();
// Structural parallel fraction at pinned cutoffs (see lazy_opts_pin).
BENCHMARK_CAPTURE(BM_LazyBatch, w256_exact_mt4_pin16,
                  lazy_opts_pin(BatchedRefill::kExact, 4, 16))
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_LazyBatch, w256_exact_mt4_pin8,
                  lazy_opts_pin(BatchedRefill::kExact, 4, 8))
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_LazyBatch, w256_full_mt4_pin8,
                  lazy_opts_pin(BatchedRefill::kFull, 4, 8))
    ->UseRealTime();

BENCHMARK_MAIN();
