// Ablation: multi-pass (restreaming) partitioning — quality per pass for
// HDRF and ADWISE on a shuffled clustered stream. Restreaming trades a full
// extra pass (≈2x the latency) for the hindsight the ADWISE window buys
// with milliseconds; the comparison locates both on the same latency/quality
// spectrum (paper §V, Nishimura & Ugander).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/partition/restream.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  const NamedGraph named = make_brain_like(env_scale(0.25));
  print_title("Ablation: restreaming passes (k=32, shuffled stream)");
  print_graph_info(named);
  const auto edges =
      ordered_edges(named.graph, StreamOrder::kShuffled, 1);
  std::printf("%-18s %8s %8s\n", "strategy", "pass", "rep");

  auto sweep = [&](const std::string& label, const RestreamFactory& factory) {
    const auto result =
        restream_partition(edges, named.graph.num_vertices(), 32, factory, 3);
    for (std::size_t pass = 0; pass < result.pass_replication.size();
         ++pass) {
      std::printf("%-18s %8zu %8.3f\n", label.c_str(), pass + 1,
                  result.pass_replication[pass]);
    }
  };

  sweep("HDRF", [] { return make_baseline_partitioner("hdrf", 32); });
  sweep("ADWISE w=64", [] {
    AdwiseOptions opts;
    opts.adaptive_window = false;
    opts.initial_window = 64;
    return std::make_unique<AdwisePartitioner>(opts);
  });
  return 0;
}
