// Ablation: stream-order sensitivity. Streaming partitioners inherit
// whatever locality the input file happens to have; this sweep measures all
// strategies under natural (community-contiguous, like real dataset files),
// shuffled (adversarial), and BFS (maximally local) orderings — the
// assumption behind the paper's locality arguments made explicit.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/adwise_partitioner.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  const NamedGraph named = make_brain_like(env_scale(0.25));
  print_title("Ablation: stream-order sensitivity (k=32, single instance)");
  print_graph_info(named);
  std::printf("%-18s %-10s %8s %8s\n", "strategy", "order", "rep", "imbal");

  AdwiseOptions opts;
  opts.adaptive_window = false;
  opts.initial_window = 64;
  const Strategy strategies[] = {
      baseline_strategy("hash", "hash"),
      baseline_strategy("dbh", "dbh"),
      baseline_strategy("greedy", "greedy"),
      baseline_strategy("hdrf", "hdrf"),
      adwise_strategy("adwise w=64", opts),
  };
  for (const Strategy& strategy : strategies) {
    for (const StreamOrder order :
         {StreamOrder::kNatural, StreamOrder::kShuffled, StreamOrder::kBfs}) {
      const PartitionRun run =
          run_partition_single(named.graph, strategy, 32, order);
      std::printf("%-18s %-10s %8.3f %8.3f\n", run.label.c_str(),
                  to_string(order), run.replication, run.imbalance);
    }
  }
  return 0;
}
