// Ablation: partial (observed-so-far) vs. exact degrees for the
// degree-aware strategies. DBH and HDRF were formulated with full degree
// knowledge; streaming implementations (and the paper's Ψ) use partial
// degrees. The oracle quantifies what that approximation costs on a skewed
// graph.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/adwise_partitioner.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  const NamedGraph named = make_orkut_like(env_scale(0.25));
  print_title("Ablation: partial vs. exact degrees (k=32)");
  print_graph_info(named);
  const auto edges = ordered_edges(named.graph, StreamOrder::kShuffled, 1);
  const auto exact_degrees = named.graph.degrees();
  std::printf("%-18s %-8s %8s %8s\n", "strategy", "degrees", "rep", "imbal");

  auto evaluate = [&](const std::string& label,
                      std::unique_ptr<EdgePartitioner> partitioner,
                      bool oracle) {
    PartitionState state(32, named.graph.num_vertices());
    if (oracle) state.set_degree_oracle(exact_degrees);
    VectorEdgeStream stream(edges);
    partitioner->partition(stream, state);
    std::printf("%-18s %-8s %8.3f %8.3f\n", label.c_str(),
                oracle ? "exact" : "partial", state.replication_degree(),
                state.imbalance());
  };

  for (const char* name : {"dbh", "hdrf"}) {
    for (const bool oracle : {false, true}) {
      evaluate(name, make_baseline_partitioner(name, 32), oracle);
    }
  }
  AdwiseOptions opts;
  opts.adaptive_window = false;
  opts.initial_window = 64;
  for (const bool oracle : {false, true}) {
    evaluate("adwise w=64", std::make_unique<AdwisePartitioner>(opts),
             oracle);
  }
  return 0;
}
