#include "bench/bench_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace adwise::bench {

double env_scale(double base) {
  double factor = 1.0;
  if (const char* raw = std::getenv("ADWISE_BENCH_SCALE")) {
    factor = std::atof(raw);
    if (factor <= 0.0) factor = 1.0;
  }
  return std::clamp(base * factor, 0.01 * base, 100.0 * base);
}

Strategy baseline_strategy(const std::string& name, const std::string& label) {
  Strategy s;
  s.label = label.empty() ? name : label;
  s.factory = [name](std::uint32_t instance, std::uint32_t local_k) {
    auto p = make_baseline_partitioner(name, local_k, instance);
    if (p == nullptr) {
      std::fprintf(stderr, "unknown baseline '%s'\n", name.c_str());
      std::abort();
    }
    return p;
  };
  return s;
}

Strategy adwise_strategy(const std::string& label,
                         const AdwiseOptions& options) {
  Strategy s;
  s.label = label;
  s.factory = [options](std::uint32_t, std::uint32_t) {
    return std::make_unique<AdwisePartitioner>(options);
  };
  return s;
}

std::vector<Strategy> paper_strategies(double reference_seconds,
                                       const std::vector<double>& multiples,
                                       const AdwiseOptions& adwise_base) {
  std::vector<Strategy> strategies;
  strategies.push_back(baseline_strategy("dbh", "DBH"));
  strategies.push_back(baseline_strategy("hdrf", "HDRF"));
  for (const double multiple : multiples) {
    AdwiseOptions opts = adwise_base;
    // A preference of 0 would mean "single-edge"; clamp tiny references up.
    opts.latency_preference_ms = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(reference_seconds * multiple * 1e3));
    char label[64];
    std::snprintf(label, sizeof(label), "ADWISE L=%lldms",
                  static_cast<long long>(opts.latency_preference_ms));
    strategies.push_back(adwise_strategy(label, opts));
  }
  return strategies;
}

PartitionRun run_partition(const Graph& graph, const Strategy& strategy,
                           const LoadingConfig& config) {
  const auto edges = ordered_edges(graph, config.order, config.seed);
  SpotlightOptions opts;
  opts.k = config.k;
  opts.num_partitioners = config.z;
  opts.spread = config.spread;
  opts.run_threads = config.run_threads;
  opts.on_instance_done = config.on_instance_done;
  auto result =
      run_spotlight(edges, graph.num_vertices(), strategy.factory, opts);
  PartitionRun run;
  run.label = strategy.label;
  run.seconds = result.wall_seconds;
  run.replication = result.merged.replication_degree();
  run.imbalance = result.merged.imbalance();
  run.instance_seconds = std::move(result.instance_seconds);
  run.assignments = std::move(result.assignments);
  return run;
}

PartitionRun run_partition_single(const Graph& graph,
                                  const Strategy& strategy, std::uint32_t k,
                                  StreamOrder order, std::uint64_t seed) {
  LoadingConfig config;
  config.k = k;
  config.z = 1;
  config.spread = k;
  config.order = order;
  config.seed = seed;
  return run_partition(graph, strategy, config);
}

std::vector<std::pair<std::string, double>> metric_counters(
    const obs::MetricsRegistry& registry) {
  std::vector<std::pair<std::string, double>> out;
  const obs::MetricsSnapshot snap = registry.snapshot();
  for (const obs::MetricEntry& e : snap.entries) {
    if (e.kind == obs::MetricEntry::Kind::kHistogram) {
      out.emplace_back(e.name + ".sum", e.value);
      out.emplace_back(e.name + ".count", static_cast<double>(e.count));
    } else {
      out.emplace_back(e.name, e.value);
    }
  }
  return out;
}

ClusterModel paper_cluster() {
  // Calibrated so the partitioning : processing latency ratio matches the
  // paper's testbed regime (see cluster_model.h and EXPERIMENTS.md).
  return calibrated_cluster_model();
}

void print_title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_graph_info(const NamedGraph& graph) {
  std::printf("graph: %s (%s), |V|=%u, |E|=%zu\n", graph.name.c_str(),
              graph.kind.c_str(), graph.graph.num_vertices(),
              graph.graph.num_edges());
}

void print_stacked_header(const std::vector<std::string>& block_names) {
  std::printf("%-18s %10s %8s %8s", "strategy", "part_s", "rep", "imbal");
  for (const auto& name : block_names) {
    std::printf(" %12s", ("tot@" + name).c_str());
  }
  std::printf("\n");
}

void print_stacked_row(const PartitionRun& run,
                       const std::vector<double>& block_seconds) {
  std::printf("%-18s %10.3f %8.3f %8.3f", run.label.c_str(), run.seconds,
              run.replication, run.imbalance);
  double total = run.seconds;
  for (const double block : block_seconds) {
    total += block;
    std::printf(" %12.3f", total);
  }
  std::printf("\n");
}

}  // namespace adwise::bench
