// Figure 7a: PageRank on the Brain stand-in — stacked partitioning +
// processing latency for DBH, HDRF and an ADWISE latency-preference sweep.
#include "bench/fig7_helpers.h"

int main() {
  using namespace adwise::bench;
  PageRankFigure figure;
  figure.title = "Figure 7a: PageRank on brain-like (k=32, z=8, spread=4)";
  figure.graph = adwise::make_brain_like(env_scale(0.5));
  figure.blocks = 3;
  figure.iterations_per_block = 100;
  run_pagerank_figure(figure);
  return 0;
}
