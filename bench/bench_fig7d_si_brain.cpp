// Figure 7d: subgraph isomorphism (circle search, path lengths 19/15/21) on
// the Brain stand-in — the communication-heavy NP-complete workload.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/subgraph_iso.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  const NamedGraph named = make_brain_like(env_scale(0.12));
  print_title(
      "Figure 7d: Subgraph isomorphism (circles 19/15/21) on brain-like");
  print_graph_info(named);
  LoadingConfig config;
  const Strategy ref = baseline_strategy("hdrf", "HDRF(ref)");
  const double ref_seconds =
      run_partition(named.graph, ref, config).seconds;
  std::printf("reference single-edge (HDRF) latency: %.3f s\n", ref_seconds);
  print_stacked_header({"circ19", "circ15", "circ21"});

  CircleSearchConfig search;
  search.lengths = {19, 15, 21};
  search.seeds_per_search = 4;
  search.max_pending = 8;
  search.forward_prob = 0.7;

  AdwiseOptions adwise_base;
  adwise_base.max_window = 1 << 14;
  for (const Strategy& strategy :
       paper_strategies(ref_seconds, {2.0, 4.0, 8.0}, adwise_base)) {
    const PartitionRun run = run_partition(named.graph, strategy, config);
    const WorkloadResult workload = run_circle_searches(
        named.graph, run.assignments, paper_cluster(), search);
    print_stacked_row(run, workload.block_seconds);
  }
  return 0;
}
