// Figure 7e: speculative graph coloring on the Web stand-in.
//
// Block-size rescale: the paper measures blocks of 50 iterations on the
// 1.15B-edge Web graph, which is still converging after 300 iterations. Our
// stand-in is ~2000x smaller and converges in ~30 supersteps, so blocks of 5
// iterations preserve the paper's six-block structure and its declining
// per-block latency shape (EXPERIMENTS.md, Fig. 7e notes).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/coloring.h"

int main() {
  using namespace adwise;
  using namespace adwise::bench;

  const NamedGraph named = make_web_like(env_scale(0.5));
  print_title("Figure 7e: Graph coloring on web-like (blocks of 5)");
  print_graph_info(named);
  LoadingConfig config;
  const Strategy ref = baseline_strategy("hdrf", "HDRF(ref)");
  const double ref_seconds =
      run_partition(named.graph, ref, config).seconds;
  std::printf("reference single-edge (HDRF) latency: %.3f s\n", ref_seconds);
  print_stacked_header({"5it", "10it", "15it", "20it", "25it", "30it"});

  AdwiseOptions adwise_base;
  adwise_base.max_window = 1 << 14;
  for (const Strategy& strategy :
       paper_strategies(ref_seconds, {2.0, 4.0, 8.0}, adwise_base)) {
    const PartitionRun run = run_partition(named.graph, strategy, config);
    const WorkloadResult workload = run_coloring_blocks(
        named.graph, run.assignments, paper_cluster(), 6, 5);
    print_stacked_row(run, workload.block_seconds);
  }
  return 0;
}
