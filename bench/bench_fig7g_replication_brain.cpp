// Figure 7g: replication degree vs. invested partitioning latency on the
// Brain stand-in.
#include "bench/fig7_helpers.h"

int main() {
  using namespace adwise::bench;
  ReplicationFigure figure;
  figure.title = "Figure 7g: replication degree on brain-like (k=32)";
  figure.graph = adwise::make_brain_like(env_scale(0.5));
  figure.latency_multiples = {2.0, 4.0, 8.0, 16.0};
  run_replication_figure(figure);
  return 0;
}
