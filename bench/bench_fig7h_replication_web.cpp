// Figure 7h: replication degree vs. invested partitioning latency on the
// Web stand-in.
#include "bench/fig7_helpers.h"

int main() {
  using namespace adwise::bench;
  ReplicationFigure figure;
  figure.title = "Figure 7h: replication degree on web-like (k=32)";
  figure.graph = adwise::make_web_like(env_scale(0.5));
  figure.latency_multiples = {2.0, 4.0, 8.0, 16.0};
  run_replication_figure(figure);
  return 0;
}
