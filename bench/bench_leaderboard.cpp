// Quality leaderboard: every registry algorithm plus ADWISE over a synthetic
// dataset zoo, one JSON document with one row per (algorithm, dataset, k).
//
// Standalone on purpose — no google-benchmark dependency — so the binary
// builds under every CI configuration (sanitizers build with
// ADWISE_BUILD_BENCH=ON but no benchmark lib is needed) and the schema test
// can run it directly. tools/leaderboard.py renders the ranked tables;
// tools/check_bench_guardrail.py --leaderboard pins the quality gates.
//
// Row fields:
//   algorithm, rival_class, dataset, power_law, k, n, m,
//   replication, imbalance, load_balance, vertex_balance,
//   seconds, edges_per_second
//
// rival_class partitions the fleet for the guardrail's comparisons:
//   reference — adwise (the system under test)
//   streaming — true single-edge streamers (hash, 1d, grid, dbh, greedy,
//               hdrf, ebv): O(1) state per decision beyond the vertex cache
//   offline   — algorithms that buffer the full edge set before deciding
//               (ne, fennel, ldg, 2ps); quality context, not a fair
//               streaming comparison
//
// Usage:
//   bench_leaderboard [--scale F] [--out FILE] [--ks CSV]
//                     [--datasets CSV] [--algorithms CSV]
//
// Defaults: scale 1.0 (~100k-edge graphs), stdout, ks 8,32, all five
// datasets (rmat, ba, ws, grid, rmat_adw), all twelve algorithms. The zoo
// covers both stream regimes the paper cares about: power-law graphs (rmat,
// ba and the .adw round-trip of rmat) and flat-degree graphs (ws, grid).
// rmat_adw exercises the binary .adw path end to end: the rmat edges are
// written to a CRC'd .adw file, streamed back through BinaryEdgeStream and
// partitioned from the decoded sequence.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/io/adw_format.h"
#include "src/io/binary_stream.h"
#include "src/partition/quality.h"

namespace {

using namespace adwise;
using namespace adwise::bench;

struct Dataset {
  std::string name;
  bool power_law = false;
  Graph graph;
};

struct Row {
  std::string algorithm;
  std::string rival_class;
  std::string dataset;
  bool power_law = false;
  std::uint32_t k = 0;
  VertexId n = 0;
  std::size_t m = 0;
  double replication = 0.0;
  double imbalance = 0.0;
  double load_balance = 0.0;
  double vertex_balance = 0.0;
  double seconds = 0.0;
  double edges_per_second = 0.0;
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

const char* rival_class_of(const std::string& algorithm) {
  if (algorithm == "adwise") return "reference";
  if (algorithm == "ne" || algorithm == "fennel" || algorithm == "ldg" ||
      algorithm == "2ps") {
    return "offline";
  }
  return "streaming";
}

Graph adw_round_trip(const Graph& graph) {
  namespace fs = std::filesystem;
  const fs::path path =
      fs::temp_directory_path() / "adwise_leaderboard_roundtrip.adw";
  AdwWriter::Options options;
  options.with_crc = true;
  write_adw_file(path.string(), graph.edges(), options);
  std::vector<Edge> edges;
  {
    BinaryEdgeStream stream(path.string());
    edges.reserve(stream.size_hint());
    Edge e;
    while (stream.next(e)) edges.push_back(e);
  }
  fs::remove(path);
  return Graph(graph.num_vertices(), std::move(edges));
}

std::vector<Dataset> make_zoo(double scale,
                              const std::vector<std::string>& wanted) {
  const auto selected = [&](const char* name) {
    return std::find(wanted.begin(), wanted.end(), name) != wanted.end();
  };
  const auto scaled = [scale](double base) {
    return static_cast<std::size_t>(std::max(1.0, base * scale));
  };

  std::vector<Dataset> zoo;
  if (selected("rmat") || selected("rmat_adw")) {
    RmatParams params;
    params.scale = 14;
    params.num_edges = scaled(100'000);
    params.seed = 7;
    Graph rmat = make_rmat(params);
    if (selected("rmat")) zoo.push_back({"rmat", true, rmat});
    if (selected("rmat_adw")) {
      zoo.push_back({"rmat_adw", true, adw_round_trip(rmat)});
    }
  }
  if (selected("ba")) {
    zoo.push_back(
        {"ba", true,
         make_barabasi_albert(static_cast<VertexId>(scaled(20'000)), 5, 7)});
  }
  if (selected("ws")) {
    zoo.push_back(
        {"ws", false,
         make_watts_strogatz(static_cast<VertexId>(scaled(20'000)), 8, 0.05,
                             7)});
  }
  if (selected("grid")) {
    const auto side = static_cast<VertexId>(
        std::max(2.0, std::sqrt(50'000.0 * scale)));
    zoo.push_back({"grid", false, make_grid(side, side)});
  }
  // Keep declared order stable regardless of selection order above.
  std::vector<Dataset> ordered;
  for (const char* name : {"rmat", "ba", "ws", "grid", "rmat_adw"}) {
    for (auto& d : zoo) {
      if (d.name == name) ordered.push_back(std::move(d));
    }
  }
  return ordered;
}

void write_json(std::FILE* out, double scale, const std::vector<Row>& rows) {
  std::fprintf(out, "{\n  \"schema_version\": 1,\n  \"scale\": %.4f,\n",
               scale);
  std::fprintf(out, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"algorithm\": \"%s\", \"rival_class\": \"%s\", "
        "\"dataset\": \"%s\", \"power_law\": %s, \"k\": %u, "
        "\"n\": %llu, \"m\": %zu, \"replication\": %.6f, "
        "\"imbalance\": %.6f, \"load_balance\": %.6f, "
        "\"vertex_balance\": %.6f, \"seconds\": %.6f, "
        "\"edges_per_second\": %.1f}%s\n",
        r.algorithm.c_str(), r.rival_class.c_str(), r.dataset.c_str(),
        r.power_law ? "true" : "false", r.k,
        static_cast<unsigned long long>(r.n), r.m, r.replication, r.imbalance,
        r.load_balance, r.vertex_balance, r.seconds, r.edges_per_second,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  double scale = env_scale(1.0);
  std::string out_path;
  std::vector<std::string> ks = {"8", "32"};
  std::vector<std::string> datasets = {"rmat", "ba", "ws", "grid",
                                       "rmat_adw"};
  std::vector<std::string> algorithms;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scale") {
      scale = std::atof(value());
      if (scale <= 0.0) {
        std::fprintf(stderr, "--scale must be > 0\n");
        return 2;
      }
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--ks") {
      ks = split_csv(value());
    } else if (arg == "--datasets") {
      datasets = split_csv(value());
    } else if (arg == "--algorithms") {
      algorithms = split_csv(value());
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scale F] [--out FILE] [--ks CSV]\n"
                   "          [--datasets CSV] [--algorithms CSV]\n",
                   argv[0]);
      return 2;
    }
  }

  if (algorithms.empty()) {
    algorithms.emplace_back("adwise");
    for (const std::string_view name : baseline_partitioner_names()) {
      algorithms.emplace_back(name);
    }
  }
  // Validate up front: an unknown name must be a usage error here, not an
  // abort() out of a strategy factory mid-run.
  for (const std::string& algorithm : algorithms) {
    if (algorithm == "adwise") continue;
    if (make_baseline_partitioner(algorithm, 2) == nullptr) {
      std::fprintf(stderr, "unknown algorithm '%s' (known: adwise, %s)\n",
                   algorithm.c_str(), baseline_partitioner_names_csv().c_str());
      return 2;
    }
  }

  const std::vector<Dataset> zoo = make_zoo(scale, datasets);
  if (zoo.empty()) {
    std::fprintf(stderr, "no datasets selected\n");
    return 2;
  }

  std::vector<Row> rows;
  for (const Dataset& dataset : zoo) {
    for (const std::string& k_str : ks) {
      const auto k = static_cast<std::uint32_t>(std::atoi(k_str.c_str()));
      if (k == 0) {
        std::fprintf(stderr, "bad k '%s'\n", k_str.c_str());
        return 2;
      }
      for (const std::string& algorithm : algorithms) {
        const Strategy strategy =
            algorithm == "adwise" ? adwise_strategy("adwise", AdwiseOptions{})
                                  : baseline_strategy(algorithm);
        const PartitionRun run = run_partition_single(
            dataset.graph, strategy, k, StreamOrder::kShuffled);
        const QualityReport quality = analyze_quality(
            run.assignments, k, dataset.graph.num_vertices());

        Row row;
        row.algorithm = algorithm;
        row.rival_class = rival_class_of(algorithm);
        row.dataset = dataset.name;
        row.power_law = dataset.power_law;
        row.k = k;
        row.n = dataset.graph.num_vertices();
        row.m = dataset.graph.num_edges();
        row.replication = quality.replication_degree;
        row.imbalance = quality.imbalance;
        row.load_balance = quality.load_balance;
        row.vertex_balance = quality.vertex_balance;
        row.seconds = run.seconds;
        row.edges_per_second =
            run.seconds > 0.0
                ? static_cast<double>(dataset.graph.num_edges()) / run.seconds
                : 0.0;
        rows.push_back(std::move(row));
        std::fprintf(stderr, "%-8s %-9s k=%-3u rep=%.4f bal=%.4f %.3fs\n",
                     dataset.name.c_str(), algorithm.c_str(), k,
                     quality.replication_degree, quality.load_balance,
                     run.seconds);
      }
    }
  }

  std::FILE* out = stdout;
  if (!out_path.empty() && out_path != "-") {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
  }
  write_json(out, scale, rows);
  if (out != stdout) std::fclose(out);
  return 0;
}
