#!/usr/bin/env python3
"""Doc hygiene checks over README.md and docs/*.md.

Two failure classes:
  * broken internal links: every relative markdown link target
    ([text](path) where path is not http(s)/mailto/#anchor) must resolve
    to an existing file or directory relative to the doc that names it;
  * unparseable command snippets: every fenced ``` sh / ``` bash block is
    extracted and run through `bash -n`, so a command block with a typo'd
    quote or continuation can't rot silently in the docs.

Usage: check_docs.py [repo_root]      (defaults to the script's repo)
"""

import os
import re
import subprocess
import sys
import tempfile

# [text](target) — target up to the first closing paren or whitespace.
# Images (![alt](...)) match too, which is what we want.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SNIPPET_LANGS = {"sh", "bash"}


def doc_files(root):
    docs = []
    readme = os.path.join(root, "README.md")
    if os.path.isfile(readme):
        docs.append(readme)
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                docs.append(os.path.join(docs_dir, name))
    return docs


def check_links(path, text, problems):
    base = os.path.dirname(path)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = os.path.normpath(os.path.join(base, target.split("#")[0]))
        if not os.path.exists(resolved):
            problems.append(f"{path}: broken link -> {target}")


def check_snippets(path, text, problems):
    # Any line whose stripped form starts with ``` toggles fence state —
    # indented fences and multi-word info strings ("```sh -x") included, so
    # the state machine can't desync and silently skip snippets.
    lines = text.splitlines()
    in_block, lang, block, start = False, "", [], 0
    for lineno, line in enumerate(lines, 1):
        stripped = line.strip()
        if stripped.startswith("```"):
            if not in_block:
                info = stripped[3:].strip()
                lang = info.split()[0].lower() if info else ""
                in_block, block, start = True, [], lineno
            else:
                in_block = False
                if lang in SNIPPET_LANGS and block:
                    lint_snippet(path, start, "\n".join(block), problems)
        elif in_block:
            block.append(line)
    if in_block:
        problems.append(f"{path}: unterminated code fence at line {start}")


def lint_snippet(path, lineno, snippet, problems):
    with tempfile.NamedTemporaryFile("w", suffix=".sh", delete=False) as tmp:
        tmp.write(snippet + "\n")
        tmp_path = tmp.name
    try:
        result = subprocess.run(["bash", "-n", tmp_path],
                                capture_output=True, text=True)
        if result.returncode != 0:
            detail = result.stderr.strip().replace(tmp_path, "<snippet>")
            problems.append(
                f"{path}: snippet at line {lineno} fails bash -n: {detail}")
    finally:
        os.unlink(tmp_path)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    docs = doc_files(root)
    if not docs:
        print(f"no markdown docs found under {root}", file=sys.stderr)
        return 2
    problems = []
    snippet_count = 0
    for path in docs:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        check_links(path, text, problems)
        check_snippets(path, text, problems)
        snippet_count += text.count("```sh") + text.count("```bash")
    if problems:
        for p in problems:
            print(f"DOCS FAILURE: {p}", file=sys.stderr)
        return 1
    print(f"docs OK: {len(docs)} files, links resolve, "
          f"{snippet_count} sh/bash snippets parse")
    return 0


if __name__ == "__main__":
    sys.exit(main())
