#!/usr/bin/env python3
"""Quality leaderboard runner: drives bench_leaderboard and renders ranked
tables per (dataset, k) cell, best replication factor first.

Typical use:

    tools/leaderboard.py --bin build/bench/bench_leaderboard \
        --scale 0.5 --out leaderboard.json

or render an existing JSON without re-running anything:

    tools/leaderboard.py --json leaderboard.json

Columns: replication factor (Eq. 1, lower is better — the ranking key),
load balance and vertex balance (normalized max loads, 1.0 = perfect),
imbalance ((max-min)/max) and throughput. rival_class marks how fair the
comparison is: "streaming" rows decide per edge with O(1) algorithm state,
"offline" rows buffer the full edge set first, "reference" is ADWISE.
tools/check_bench_guardrail.py --leaderboard consumes the same JSON and
pins the quality gates in CI.
"""

import argparse
import json
import subprocess
import sys


def run_binary(args):
    cmd = [args.bin, "--out", args.out]
    if args.scale is not None:
        cmd += ["--scale", str(args.scale)]
    if args.ks:
        cmd += ["--ks", args.ks]
    if args.datasets:
        cmd += ["--datasets", args.datasets]
    if args.algorithms:
        cmd += ["--algorithms", args.algorithms]
    print("+ " + " ".join(cmd), file=sys.stderr)
    subprocess.run(cmd, check=True)
    return args.out


def render(path):
    with open(path) as f:
        doc = json.load(f)
    rows = doc["rows"]
    datasets = []
    for r in rows:  # first-appearance order, not alphabetical
        if r["dataset"] not in datasets:
            datasets.append(r["dataset"])
    ks = sorted({r["k"] for r in rows})

    for dataset in datasets:
        for k in ks:
            cell = [r for r in rows
                    if r["dataset"] == dataset and r["k"] == k]
            if not cell:
                continue
            info = cell[0]
            flavor = "power-law" if info["power_law"] else "flat-degree"
            print(f"\n=== {dataset} ({flavor}, |V|={info['n']}, "
                  f"|E|={info['m']}), k={k} ===")
            print(f"{'algorithm':<10} {'class':<10} {'rep':>8} "
                  f"{'load_bal':>9} {'vtx_bal':>8} {'imbal':>7} "
                  f"{'edges/s':>12}")
            for r in sorted(cell, key=lambda r: r["replication"]):
                print(f"{r['algorithm']:<10} {r['rival_class']:<10} "
                      f"{r['replication']:>8.4f} {r['load_balance']:>9.3f} "
                      f"{r['vertex_balance']:>8.3f} {r['imbalance']:>7.3f} "
                      f"{r['edges_per_second']:>12.0f}")
    print(f"\n{len(rows)} rows "
          f"({len({r['algorithm'] for r in rows})} algorithms x "
          f"{len(datasets)} datasets x {len(ks)} k values)")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--bin", default="build/bench/bench_leaderboard",
                        help="bench_leaderboard binary to run")
    parser.add_argument("--json", default=None,
                        help="render this existing JSON instead of running")
    parser.add_argument("--out", default="leaderboard.json",
                        help="where the run writes its JSON")
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale factor (binary default: 1.0)")
    parser.add_argument("--ks", default=None, help="CSV of k values")
    parser.add_argument("--datasets", default=None, help="CSV of datasets")
    parser.add_argument("--algorithms", default=None,
                        help="CSV of algorithms")
    args = parser.parse_args()

    path = args.json if args.json is not None else run_binary(args)
    render(path)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
