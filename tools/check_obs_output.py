#!/usr/bin/env python3
"""Validates partition_file --metrics / --trace output.

Used by the CI obs-smoke job (and handy locally) to prove a run's
observability artifacts are well-formed:

  * --metrics FILE: parses as a flat JSON object of numbers; every name
    given via --require-metric must be present.
  * --trace FILE: parses as Chrome trace-event JSON ({"traceEvents": [...]},
    one event per line); per tid, timestamps must be monotonically
    non-decreasing and duration events must nest as balanced B/E pairs with
    matching names; every name given via --require-span must appear at
    least once as a complete pair; --min-tids asserts the span events cover
    at least that many distinct thread tracks.

Usage: check_obs_output.py [--metrics FILE] [--trace FILE]
                           [--require-metric NAME]... [--require-span NAME]...
                           [--min-tids N]

Exits 0 when every given file validates, 1 otherwise.
"""

import argparse
import json
import sys


def check_metrics(path, required, problems):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.append(f"{path}: not parseable JSON: {e}")
        return
    if not isinstance(data, dict):
        problems.append(f"{path}: expected a flat JSON object")
        return
    bad = [k for k, v in data.items() if not isinstance(v, (int, float))]
    if bad:
        problems.append(f"{path}: non-numeric metric values: {bad[:5]}")
    for name in required:
        if name not in data:
            problems.append(f"{path}: required metric '{name}' missing")
    print(f"{path}: {len(data)} metrics")


def check_trace(path, required_spans, min_tids, problems):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        problems.append(f"{path}: not parseable JSON: {e}")
        return
    events = data.get("traceEvents")
    if not isinstance(events, list):
        problems.append(f"{path}: no traceEvents array")
        return

    complete = set()  # span names seen as a full B..E pair
    tids = set()
    last_ts = {}
    stacks = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            continue
        if ph not in ("B", "E"):
            problems.append(f"{path}: event {i} has unexpected ph '{ph}'")
            continue
        tid = e.get("tid")
        ts = e.get("ts")
        name = e.get("name")
        if not isinstance(ts, (int, float)) or tid is None or not name:
            problems.append(f"{path}: event {i} missing ts/tid/name")
            continue
        tids.add(tid)
        if tid in last_ts and ts < last_ts[tid]:
            problems.append(
                f"{path}: tid {tid} timestamps not monotone at event {i} "
                f"({ts} < {last_ts[tid]})")
        last_ts[tid] = ts
        stack = stacks.setdefault(tid, [])
        if ph == "B":
            stack.append(name)
        else:
            if not stack or stack[-1] != name:
                problems.append(
                    f"{path}: tid {tid} unbalanced E '{name}' at event {i} "
                    f"(open: {stack[-3:]})")
                continue
            stack.pop()
            complete.add(name)
    for tid, stack in stacks.items():
        if stack:
            problems.append(
                f"{path}: tid {tid} ends with unclosed spans {stack[:5]}")
    for name in required_spans:
        if name not in complete:
            problems.append(
                f"{path}: required span '{name}' never completed a B/E pair "
                f"(seen: {sorted(complete)})")
    if min_tids is not None and len(tids) < min_tids:
        problems.append(
            f"{path}: span events cover {len(tids)} thread tracks, "
            f"required >= {min_tids}")
    dropped = data.get("otherData", {}).get("dropped_events", 0)
    print(f"{path}: {len(events)} events on {len(tids)} tracks, "
          f"{len(complete)} distinct spans, {dropped} dropped")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--metrics")
    parser.add_argument("--trace")
    parser.add_argument("--require-metric", action="append", default=[])
    parser.add_argument("--require-span", action="append", default=[])
    parser.add_argument("--min-tids", type=int)
    args = parser.parse_args()
    if args.metrics is None and args.trace is None:
        parser.error("give at least one of --metrics / --trace")

    problems = []
    if args.metrics is not None:
        check_metrics(args.metrics, args.require_metric, problems)
    if args.trace is not None:
        check_trace(args.trace, args.require_span, args.min_tids, problems)

    if problems:
        for p in problems:
            print(f"OBS OUTPUT FAILURE: {p}", file=sys.stderr)
        return 1
    print("obs outputs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
