// edgelist2adw: convert a SNAP-style text edge list to the .adw binary
// format (src/io/adw_format.h documents the layout).
//
//   $ ./edgelist2adw <graph.txt> <graph.adw>
//   $ ./edgelist2adw --crc <graph.txt> <graph.adw>
//   $ ./edgelist2adw --shards 8 <graph.txt> <graph.adws>
//
// --crc writes a version-2 file with a per-block CRC-32 trailer, so readers
// detect bit rot in the record region (BinaryEdgeStream verifies each chunk
// against the table as it streams). The record bytes are identical to
// version 1.
//
// Single-file mode streams in one pass, O(1) memory: comments, blank and
// malformed lines and self-loops are skipped exactly like the text
// streaming parser, so the .adw file always replays the same edge sequence
// FileEdgeStream would deliver — just ~an order of magnitude faster to
// read back.
//
// --shards z writes z chunk files plus a manifest (src/io/adw_shards.h):
// a counting pass fixes the chunk boundaries, then the stream is replayed
// into one writer per shard. Each spotlight instance can then read its own
// shard concurrently (§III-D parallel loading). The input may also be an
// existing .adw file (detected by magic), in which case it is resharded in
// a single pass.
//
// Exit codes follow the partition_file contract (0 success, 1 other,
// 2 usage, 3 corrupt input, 4 transient I/O budget exhausted, 5 disk
// full), and ADWISE_FAULT_* environment variables install the same
// process-wide fault injector — so tools/run_chaos.py can drive the
// convert and shard phases through fault schedules too.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "src/io/adw_format.h"
#include "src/io/adw_shards.h"
#include "src/io/fault_injection.h"
#include "src/io/io_error.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--crc] [--shards z] <graph.txt|graph.adw> <out.adw[s]>\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace adwise;
  install_fault_injector_from_env();
  unsigned long shards = 0;
  bool with_crc = false;
  int arg = 1;
  while (arg < argc && std::string(argv[arg]).rfind("--", 0) == 0) {
    const std::string flag = argv[arg];
    if (flag == "--crc") {
      with_crc = true;
      ++arg;
    } else if (flag == "--shards") {
      if (arg + 1 >= argc) return usage(argv[0]);
      char* end = nullptr;
      shards = std::strtoul(argv[arg + 1], &end, 10);
      // Reject trailing garbage ("8x") and counts a uint32 cast would
      // silently truncate — 2^20 shards is already far past any real z.
      if (end == argv[arg + 1] || *end != '\0' || shards < 1 ||
          shards > (1ul << 20)) {
        std::fprintf(stderr,
                     "error: --shards needs a count in [1, %lu], got '%s'\n",
                     1ul << 20, argv[arg + 1]);
        return 2;
      }
      arg += 2;
    } else {
      return usage(argv[0]);
    }
  }
  if (with_crc && shards != 0) {
    std::fprintf(stderr,
                 "error: --crc is only supported for single-file output\n");
    return 2;
  }
  if (argc - arg != 2) return usage(argv[0]);
  const std::string in_path = argv[arg];
  const std::string out_path = argv[arg + 1];

  try {
    if (is_adw_manifest(in_path)) {
      // The text parser would skip every binary "line" and silently write
      // a valid empty graph over the output.
      std::fprintf(stderr,
                   "error: %s is an .adws manifest — reshard from the "
                   "original .adw or text file\n",
                   in_path.c_str());
      return 1;
    }
    if (shards == 0) {
      AdwWriter::Options options;
      options.with_crc = with_crc;
      const AdwHeader header = edge_list_to_adw(in_path, out_path, options);
      const std::uint64_t record_bytes = header.num_edges * kAdwRecordBytes;
      std::uint64_t total_bytes = kAdwHeaderBytes + record_bytes;
      if (header.version >= kAdwVersionCrc) {
        total_bytes += 4 * adw_num_crc_blocks(record_bytes,
                                              header.crc_block_bytes) +
                       kAdwFooterBytes;
      }
      std::fprintf(stderr,
                   "wrote %s (v%u): %llu edges, max vertex id %llu (%llu bytes)\n",
                   out_path.c_str(), header.version,
                   static_cast<unsigned long long>(header.num_edges),
                   static_cast<unsigned long long>(header.max_vertex_id),
                   static_cast<unsigned long long>(total_bytes));
      return 0;
    }
    const auto z = static_cast<std::uint32_t>(shards);
    const AdwManifest manifest =
        is_adw_file(in_path) ? adw_to_sharded_adw(in_path, out_path, z)
                             : edge_list_to_sharded_adw(in_path, out_path, z);
    std::fprintf(stderr, "wrote %s: %u shards, %llu edges, max vertex id %llu\n",
                 out_path.c_str(), manifest.num_shards(),
                 static_cast<unsigned long long>(manifest.num_edges()),
                 static_cast<unsigned long long>(manifest.max_vertex_id()));
    for (std::uint32_t i = 0; i < manifest.num_shards(); ++i) {
      std::fprintf(stderr, "  %s: %llu edges, max vertex id %llu\n",
                   adw_shard_path(out_path, i).c_str(),
                   static_cast<unsigned long long>(
                       manifest.shards[i].num_edges),
                   static_cast<unsigned long long>(
                       manifest.shards[i].max_vertex_id));
    }
  } catch (const DiskFullError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 5;
  } catch (const TransientIoError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 4;
  } catch (const CorruptDataError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 3;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
