// edgelist2adw: convert a SNAP-style text edge list to the .adw binary
// format (src/io/adw_format.h documents the layout).
//
//   $ ./edgelist2adw <graph.txt> <graph.adw>
//
// Single streaming pass, O(1) memory: comments, blank/malformed lines and
// self-loops are skipped exactly like the text streaming parser, so the
// .adw file always replays the same edge sequence FileEdgeStream would
// deliver — just ~an order of magnitude faster to read back.
#include <cstdio>
#include <exception>
#include <string>

#include "src/io/adw_format.h"

int main(int argc, char** argv) {
  using namespace adwise;
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <graph.txt> <graph.adw>\n", argv[0]);
    return 2;
  }
  const std::string in_path = argv[1];
  const std::string out_path = argv[2];
  try {
    const AdwHeader header = edge_list_to_adw(in_path, out_path);
    std::fprintf(stderr,
                 "wrote %s: %llu edges, max vertex id %llu (%llu bytes)\n",
                 out_path.c_str(),
                 static_cast<unsigned long long>(header.num_edges),
                 static_cast<unsigned long long>(header.max_vertex_id),
                 static_cast<unsigned long long>(
                     kAdwHeaderBytes + header.num_edges * kAdwRecordBytes));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
