#!/usr/bin/env python3
"""End-to-end chaos harness over the real binaries.

Drives the full pipeline — convert (edgelist2adw), shard (edgelist2adw
--shards), checkpointed partition (partition_file) with SIGKILL crashes and
checkpoint resume — under seeded ADWISE_FAULT_* schedules, and checks the
contract the repo's write-path fault tolerance promises:

  * every faulted process exits with a *typed* code: 0 (done), 4 (transient
    budget exhausted — retry), 5 (disk full — retry), or dies to our own
    SIGKILL; anything else (1, 2, 3, crashes we did not request) fails the
    harness;
  * a failed or killed phase leaves no torn destination and no orphan
    *.tmp file, so simply re-running the phase recovers;
  * after every schedule, the final artifacts are byte-identical to a
    fault-free reference run (the .adw bytes and the partition output).

Fault schedules are derived per (seed, attempt): the injector's once-only
map resets across processes, so each retry must draw a fresh schedule or it
would replay the exact fault that killed it. A bounded number of faulty
attempts is followed by fault-free ones, so the harness provably
terminates.

Usage:
  tools/run_chaos.py --build-dir build [--seeds 1-5] [--edges 4000]
"""

import argparse
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile

MAX_FAULTY_ATTEMPTS = 20  # per phase, then the fault env is dropped
MAX_ATTEMPTS = 25
RETRYABLE = (4, 5)  # transient budget exhausted / disk full
KILLED = -signal.SIGKILL


def log(msg):
    print(f"[chaos] {msg}", flush=True)


def fault_env(seed, attempt, enospc):
    """Write-heavy schedule for one attempt; {} past the faulty budget."""
    if attempt > MAX_FAULTY_ATTEMPTS:
        return {}
    env = {
        "ADWISE_FAULT_SEED": str(seed * 1000003 + attempt),
        "ADWISE_FAULT_WRITE_EINTR_P": "0.10",
        "ADWISE_FAULT_WRITE_SHORT_P": "0.10",
        "ADWISE_FAULT_WRITE_EIO_P": "0.05",
        "ADWISE_FAULT_READ_EINTR_P": "0.05",
        "ADWISE_FAULT_READ_EAGAIN_P": "0.05",
    }
    if enospc:
        env["ADWISE_FAULT_ENOSPC_P"] = "0.03"
    return env


def run(cmd, extra_env):
    env = dict(os.environ)
    env.update(extra_env)
    proc = subprocess.run(
        cmd, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE
    )
    return proc.returncode, proc.stderr.decode(errors="replace")


def check_no_litter(workdir, when):
    litter = [f for f in os.listdir(workdir) if f.endswith(".tmp")]
    if litter:
        sys.exit(f"FAIL: orphan temp files {litter} {when}")


def run_phase(name, cmd, workdir, seed, enospc, accept_kill=False):
    """Retries cmd under per-attempt fault schedules until it exits 0."""
    faults_seen = 0
    for attempt in range(1, MAX_ATTEMPTS + 1):
        code, stderr = run(cmd, fault_env(seed, attempt, enospc))
        if code == 0:
            check_no_litter(workdir, f"after {name} converged")
            log(f"  {name}: converged after {attempt} attempt(s), "
                f"{faults_seen} typed failure(s)")
            return faults_seen
        if code in RETRYABLE or (accept_kill and code == KILLED):
            faults_seen += 1
            check_no_litter(workdir, f"after {name} attempt {attempt} "
                                     f"(exit {code})")
            continue
        sys.exit(f"FAIL: {name} attempt {attempt} exited {code} "
                 f"(only 0/4/5 allowed)\nstderr:\n{stderr}")
    sys.exit(f"FAIL: {name} did not converge in {MAX_ATTEMPTS} attempts")


def files_identical(a, b):
    with open(a, "rb") as fa, open(b, "rb") as fb:
        return fa.read() == fb.read()


def chaos_partition(bins, workdir, adw, out, ref_out, seed, enospc):
    """Checkpointed partitioning under faults + SIGKILL crashes + resume."""
    ckpt = os.path.join(workdir, "chaos.ckpt")
    kills = crashes = typed = 0
    for attempt in range(1, MAX_ATTEMPTS + 1):
        cmd = [bins["partition_file"], adw, "hdrf", "8", "-1",
               "--output", out, "--checkpoint", ckpt,
               "--checkpoint-every", "500", "--watchdog-ms", "2000"]
        if os.path.exists(ckpt):
            cmd += ["--resume", ckpt]
        env = fault_env(seed, attempt, enospc)
        # First few attempts also die by SIGKILL right after a checkpoint
        # commit — the hardest crash the format must survive.
        if attempt <= 3:
            env["ADWISE_TEST_KILL_AFTER_CHECKPOINT"] = str(attempt)
        code, stderr = run(cmd, env)
        if code == 0:
            log(f"  partition: converged after {attempt} attempt(s), "
                f"{kills} kill(s), {typed} typed failure(s)")
            break
        if code == KILLED:
            kills += 1
            crashes += 1
            continue  # a SIGKILL may legitimately leave a *.tmp behind
        if code in RETRYABLE:
            typed += 1
            crashes += 1
            check_no_litter(workdir,
                            f"after partition attempt {attempt} (exit {code})")
            continue
        sys.exit(f"FAIL: partition attempt {attempt} exited {code}"
                 f"\nstderr:\n{stderr}")
    else:
        sys.exit(f"FAIL: partition did not converge in {MAX_ATTEMPTS} attempts")
    if crashes == 0:
        sys.exit("FAIL: no partition attempt ever crashed — chaos is vacuous")
    # A SIGKILL may leave a *.tmp behind, but the converged run must have
    # cleaned up after its predecessors: no temp files, no .partial.
    check_no_litter(workdir, "after partition converged")
    if os.path.exists(out + ".partial"):
        sys.exit("FAIL: converged partition left chaos.out.partial behind")
    if not files_identical(out, ref_out):
        sys.exit("FAIL: crashed-and-resumed output differs from the "
                 "fault-free reference — resume is not bit-identical")


def run_seed(bins, seed, num_edges, keep):
    workdir = tempfile.mkdtemp(prefix=f"adwise_chaos_s{seed}_")
    log(f"seed {seed}: workdir {workdir}")
    try:
        # Seeded random multigraph edge list; self-loops are skipped by the
        # converter just like the streaming text parser.
        rng = random.Random(seed)
        num_vertices = max(50, num_edges // 10)
        txt = os.path.join(workdir, "graph.txt")
        with open(txt, "w") as f:
            f.write("# chaos harness graph\n")
            for _ in range(num_edges):
                f.write(f"{rng.randrange(num_vertices)} "
                        f"{rng.randrange(num_vertices)}\n")

        # Fault-free reference artifacts.
        ref_adw = os.path.join(workdir, "ref.adw")
        ref_out = os.path.join(workdir, "ref.out")
        for cmd in ([bins["edgelist2adw"], "--crc", txt, ref_adw],
                    [bins["partition_file"], ref_adw, "hdrf", "8", "-1",
                     "--output", ref_out]):
            code, stderr = run(cmd, {})
            if code != 0:
                sys.exit(f"FAIL: fault-free reference exited {code}"
                         f"\nstderr:\n{stderr}")

        enospc = seed % 3 == 0
        adw = os.path.join(workdir, "chaos.adw")
        manifest = os.path.join(workdir, "chaos.adws")
        out = os.path.join(workdir, "chaos.out")

        run_phase("convert", [bins["edgelist2adw"], "--crc", txt, adw],
                  workdir, seed, enospc)
        if not files_identical(adw, ref_adw):
            sys.exit("FAIL: faulted convert produced different .adw bytes")

        run_phase("shard", [bins["edgelist2adw"], "--shards", "4", adw,
                            manifest], workdir, seed * 31 + 7, enospc)

        chaos_partition(bins, workdir, adw, out, ref_out, seed, enospc)
        log(f"seed {seed}: OK")
    finally:
        if keep:
            log(f"seed {seed}: keeping {workdir}")
        else:
            shutil.rmtree(workdir, ignore_errors=True)


def parse_seeds(spec):
    if "-" in spec:
        lo, hi = spec.split("-", 1)
        return list(range(int(lo), int(hi) + 1))
    return [int(s) for s in spec.split(",")]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--seeds", default="1-4",
                    help="range 'LO-HI' or comma list (default 1-4)")
    ap.add_argument("--edges", type=int, default=4000)
    ap.add_argument("--keep", action="store_true",
                    help="keep per-seed workdirs for debugging")
    args = ap.parse_args()

    bins = {
        "edgelist2adw": os.path.join(args.build_dir, "tools", "edgelist2adw"),
        "partition_file": os.path.join(args.build_dir, "examples",
                                       "partition_file"),
    }
    for name, path in bins.items():
        if not os.access(path, os.X_OK):
            sys.exit(f"FAIL: {name} not built at {path}")

    seeds = parse_seeds(args.seeds)
    for seed in seeds:
        run_seed(bins, seed, args.edges, args.keep)
    log(f"all {len(seeds)} seed(s) green")


if __name__ == "__main__":
    main()
