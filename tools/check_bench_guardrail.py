#!/usr/bin/env python3
"""Bench guardrails over bench_micro_partitioners (and optionally
bench_ablation_io) JSON output.

Enforced (build fails):
  * sparse-vs-dense: BM_Adwise/w64_lazy must hold >= 1.5x the edges/second
    of BM_Adwise/w64_lazy_dense (the ROADMAP guardrail; currently ~3.5x).
  * parallel scoring, only when ADWISE_ENFORCE_MT_SPEEDUP=1 is set AND the
    machine has >= 4 CPUs: BM_AdwiseEager/w256_eager_mt4 must hold >= 1.8x
    the edges/second of BM_AdwiseEager/w256_eager — the eager full-window
    rescan is the regime whose batches (one whole window per selection) the
    thread pool fans out. Recorded-only by default: the threshold has not
    yet been validated on the shared 4-vCPU CI runners, and a noisy gate
    would block unrelated pushes. Flip the env once CI history shows
    headroom.
  * out-of-core stream (only when the io JSON is given):
    BM_StreamDrain/binary_prefetch must hold >= 0.8x the edges/second of
    BM_StreamDrain/in_memory — the .adw prefetching reader must cost at
    most ~20% of the in-memory edge rate (measures ~0.82-0.91x even on a
    single core, where the prefetch worker cannot overlap; the pread copy
    overlaps decode fully on multi-core runners).

Recorded (printed, never fails): the lazy-path parallel ratios, the text
and non-prefetching binary stream ratios, and the end-to-end HDRF /
2-pass-restream out-of-core ratios. After PR 1 the lazy heap leaves only a
few percent of its scoring work in batches large enough to parallelize
(~3.5 rescores per assignment), so the lazy mt captures document the
Amdahl reality rather than gate on it.

Usage: check_bench_guardrail.py <bench.json> [<io_bench.json>]
"""

import json
import os
import sys

SPARSE_MIN_SPEEDUP = 1.5
MT_MIN_SPEEDUP = 1.8
MT_MIN_CPUS = 4
IO_MIN_RATIO = 0.8


def items_per_second(benchmarks, name):
    """Best items_per_second for a benchmark name, honoring aggregates.

    Multithreaded captures carry a "/real_time" suffix (UseRealTime), and
    with --benchmark_report_aggregates_only the entries are name_mean /
    name_median / ...; prefer the median, fall back to a plain run.
    """
    for variant in (name, name + "/real_time"):
        for suffix in ("_median", "_mean", ""):
            for b in benchmarks:
                if b.get("name") == variant + suffix and \
                        "items_per_second" in b:
                    return b["items_per_second"]
    return None


def check_io(path, failures):
    """Out-of-core stream guardrails over bench_ablation_io JSON output."""
    with open(path) as f:
        benchmarks = json.load(f)["benchmarks"]

    def speedup(fast, slow):
        a = items_per_second(benchmarks, fast)
        b = items_per_second(benchmarks, slow)
        if a is None or b is None or b == 0:
            return None
        return a / b

    ooc = speedup("BM_StreamDrain/binary_prefetch", "BM_StreamDrain/in_memory")
    if ooc is None:
        failures.append("missing BM_StreamDrain binary_prefetch / in_memory")
    else:
        print(f"out-of-core drain (binary_prefetch vs in_memory): {ooc:.2f}x "
              f"(required >= {IO_MIN_RATIO}x)")
        if ooc < IO_MIN_RATIO:
            failures.append(
                f"binary stream throughput regressed: {ooc:.2f}x < "
                f"{IO_MIN_RATIO}x of in-memory")

    for fast, slow, label in [
        ("BM_StreamDrain/binary", "BM_StreamDrain/in_memory",
         "binary drain, no prefetch"),
        ("BM_StreamDrain/text", "BM_StreamDrain/in_memory", "text drain"),
        ("BM_StreamDrain/binary_prefetch", "BM_StreamDrain/text",
         "binary-vs-text drain"),
        ("BM_HdrfPartition/binary_prefetch", "BM_HdrfPartition/in_memory",
         "hdrf out-of-core"),
        ("BM_Restream2/binary_prefetch", "BM_Restream2/in_memory",
         "2-pass restream out-of-core"),
    ]:
        s = speedup(fast, slow)
        if s is not None:
            print(f"{label}: {s:.2f}x")


def main():
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        benchmarks = json.load(f)["benchmarks"]

    def speedup(fast, slow):
        a = items_per_second(benchmarks, fast)
        b = items_per_second(benchmarks, slow)
        if a is None or b is None or b == 0:
            return None
        return a / b

    failures = []

    sparse = speedup("BM_Adwise/w64_lazy", "BM_Adwise/w64_lazy_dense")
    if sparse is None:
        failures.append("missing w64_lazy / w64_lazy_dense results")
    else:
        print(f"sparse speedup (w64_lazy vs w64_lazy_dense): {sparse:.2f}x "
              f"(required >= {SPARSE_MIN_SPEEDUP}x)")
        if sparse < SPARSE_MIN_SPEEDUP:
            failures.append(
                f"sparse speedup regressed: {sparse:.2f}x < {SPARSE_MIN_SPEEDUP}x")

    cpus = os.cpu_count() or 1
    mt = speedup("BM_AdwiseEager/w256_eager_mt4", "BM_AdwiseEager/w256_eager")
    if mt is None:
        print("parallel speedup (w256_eager_mt4 vs w256_eager): not measured")
    else:
        enforced = (os.environ.get("ADWISE_ENFORCE_MT_SPEEDUP") == "1"
                    and cpus >= MT_MIN_CPUS)
        if enforced:
            note = f"(required >= {MT_MIN_SPEEDUP}x)"
        elif cpus < MT_MIN_CPUS:
            note = "(recorded only: < 4 cpus)"
        else:
            note = "(recorded only: set ADWISE_ENFORCE_MT_SPEEDUP=1 to gate)"
        print(f"parallel speedup (w256_eager_mt4 vs w256_eager): {mt:.2f}x on "
              f"{cpus} cpus {note}")
        if enforced and mt < MT_MIN_SPEEDUP:
            failures.append(
                f"parallel speedup too low: {mt:.2f}x < {MT_MIN_SPEEDUP}x on "
                f"{cpus} cpus")

    for fast, slow, label in [
        ("BM_Adwise/w64_lazy", "BM_Adwise/w64_lazy_linear", "heap-vs-linear w64"),
        ("BM_Adwise/w64_lazy_mt4", "BM_Adwise/w64_lazy", "parallel lazy w64"),
        ("BM_Adwise/w256_lazy_mt4", "BM_Adwise/w256_lazy", "parallel lazy w256"),
        ("BM_Adwise/w256_lazy", "BM_Adwise/w256_lazy_dense", "sparse w256"),
    ]:
        s = speedup(fast, slow)
        if s is not None:
            print(f"{label}: {s:.2f}x")

    if len(sys.argv) == 3:
        check_io(sys.argv[2], failures)

    if failures:
        for f in failures:
            print(f"GUARDRAIL FAILURE: {f}", file=sys.stderr)
        return 1
    print("bench guardrails OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
