#!/usr/bin/env python3
"""Bench guardrails over bench_micro_partitioners (and optionally
bench_ablation_io / bench_ablation_lazy) JSON output.

Enforced (build fails):
  * sparse-vs-dense: BM_Adwise/w64_lazy must hold >= 1.5x the edges/second
    of BM_Adwise/w64_lazy_dense (the ROADMAP guardrail; currently ~3.5x).
  * parallel scoring, only when ADWISE_ENFORCE_MT_SPEEDUP=1 is set AND the
    machine has >= 4 CPUs: BM_AdwiseEager/w256_eager_mt4 must hold >= 1.8x
    the edges/second of BM_AdwiseEager/w256_eager — the eager full-window
    rescan is the regime whose batches (one whole window per selection) the
    thread pool fans out. Recorded-only by default: the threshold has not
    yet been validated on the shared 4-vCPU CI runners, and a noisy gate
    would block unrelated pushes. Flip the env once CI history shows
    headroom.
  * out-of-core stream (only when the io JSON is given):
    BM_StreamDrain/binary_prefetch must hold >= 0.8x the edges/second of
    BM_StreamDrain/in_memory — the .adw prefetching reader must cost at
    most ~20% of the in-memory edge rate (measures ~0.82-0.91x even on a
    single core, where the prefetch worker cannot overlap; the pread copy
    overlaps decode fully on multi-core runners).
  * checkpoint tax (same io JSON):
    BM_HdrfPartitionCheckpointed/binary_prefetch must hold >= 0.9x the
    edges/second of BM_HdrfPartition/binary_prefetch — durable checkpoints
    at the default interval (one state serialization + atomic fsync/rename
    per 2^16 assignments) may cost at most ~10% of end-to-end throughput.
  * observability overhead (same io JSON):
    BM_StreamDrain/binary_prefetch_obs (live metrics sink attached) must
    hold >= 0.98x the edges/second of BM_StreamDrain/binary_prefetch (obs
    compiled in, no sink — the enabled-but-idle baseline): attaching the
    registry may cost at most ~2% of drain throughput. The capture's
    registry internals (prefetch-wait share, pread counts) are printed.
  * scoring core (only when the scoring JSON is given):
      - the vectorized dense kernel must hold >= 2x the edges/second of the
        scalar sparse-layout reference at k = 256
        (BM_ScoreKernel/dense_k256_simd vs BM_ScoreKernel/dense_k256_scalar)
        — the DenseReplicaRows + SoA + SIMD tentpole claim, measured on the
        pinned dense path whose decisions the identity matrix proves
        bit-equal to the reference.
      - the sparse simd kernels must not regress: sparse_k32_simd and
        sparse_k100_simd each >= 0.9x their scalar twin.
  * lazy batching (only when the lazy JSON is given):
      - the structural parallel fraction of the pinned-cutoff capture
        (BM_LazyBatch/w256_exact_mt4_pin8) must be >= 0.30: the share of
        rescore work arriving in pool batches is a counter, deterministic
        per workload, so this gates the batch structure itself, not the
        host (measures ~0.69; the PR-2 state was ~0.03).
      - batched refill must stay nearly free when serial:
        BM_LazyBatch/w256_exact >= 0.85x BM_LazyBatch/w256_off.
      - lazy end-to-end mt4, only under ADWISE_ENFORCE_MT_SPEEDUP=1 on
        >= 4 CPUs: the best batched mt4 capture must hold >= 1.3x
        BM_LazyBatch/w256_off.

Recorded (printed, never fails): the lazy parallel fractions and adapted
thresholds of every capture, the lazy mt ratios on small hosts, the text
and non-prefetching binary stream ratios, and the end-to-end HDRF /
2-pass-restream out-of-core ratios.

  * quality leaderboard (only when --leaderboard is given; usable standalone,
    without a micro-bench JSON):
      - coverage floor: the bench_leaderboard JSON must span >= 8 algorithms,
        >= 4 datasets and >= 2 k values (one row per cell) — shrinking the
        zoo or dropping a fleet member fails the build, not just the table.
      - ADWISE quality: on every power-law dataset at k = 32, ADWISE's
        replication factor must be <= 1.05x the best BALANCED rival of
        class "streaming" (load_balance <= 1.3 — an imbalanced partitioning
        lowers replication for free, so skewed rivals don't set the bar;
        in practice the bar is HDRF). Measures ~0.81-0.83x, i.e. ADWISE
        wins outright — the margin is the regression budget.
      - balance: every ADWISE row must hold load_balance <= 1.1 (measures
        ~1.001). Rival rows are recorded only: greedy and 1d legitimately
        skew on shuffled power-law streams, and offline vertex partitioners
        balance vertices, not edge loads — their skew is a property, not a
        regression.

Usage: check_bench_guardrail.py <bench.json> [<io_bench.json>]
                                [--lazy <lazy_bench.json>]
                                [--scoring <scoring_bench.json>]
                                [--leaderboard <leaderboard.json>]
"""

import json
import os
import sys

SPARSE_MIN_SPEEDUP = 1.5
MT_MIN_SPEEDUP = 1.8
MT_MIN_CPUS = 4
IO_MIN_RATIO = 0.8
CHECKPOINT_MIN_RATIO = 0.9
OBS_MIN_RATIO = 0.98
LAZY_MT_MIN_SPEEDUP = 1.3
LAZY_MIN_PARALLEL_FRACTION = 0.30
LAZY_SERIAL_MIN_RATIO = 0.85
SCORING_DENSE_MIN_SPEEDUP = 2.0
SCORING_SPARSE_MIN_RATIO = 0.9
LEADERBOARD_MIN_ALGORITHMS = 8
LEADERBOARD_MIN_DATASETS = 4
LEADERBOARD_MIN_KS = 2
LEADERBOARD_ADWISE_MAX_RATIO = 1.05  # vs best streaming rival, power-law k=32
LEADERBOARD_RIVAL_MAX_LOAD_BALANCE = 1.3  # rival must be balanced to set the bar
LEADERBOARD_ADWISE_MAX_LOAD_BALANCE = 1.1


def field(benchmarks, name, key):
    """Best value of a per-benchmark field, honoring aggregates.

    Multithreaded captures carry a "/real_time" suffix (UseRealTime),
    pinned-iteration captures an "/iterations:N" suffix, and with
    --benchmark_report_aggregates_only the entries are name_mean /
    name_median / ...; prefer the median, fall back to a plain run.
    """
    for variant in (name, name + "/real_time", name + "/iterations:1"):
        for suffix in ("_median", "_mean", ""):
            for b in benchmarks:
                if b.get("name") == variant + suffix and key in b:
                    return b[key]
    return None


def items_per_second(benchmarks, name):
    return field(benchmarks, name, "items_per_second")


def check_lazy(path, failures):
    """Lazy-path batching guardrails over bench_ablation_lazy JSON output."""
    with open(path) as f:
        benchmarks = json.load(f)["benchmarks"]

    def speedup(fast, slow):
        a = items_per_second(benchmarks, fast)
        b = items_per_second(benchmarks, slow)
        if a is None or b is None or b == 0:
            return None
        return a / b

    captures = [
        "BM_LazyBatch/w256_off", "BM_LazyBatch/w256_off_mt4",
        "BM_LazyBatch/w256_exact", "BM_LazyBatch/w256_exact_mt4",
        "BM_LazyBatch/w256_full", "BM_LazyBatch/w256_full_mt4",
        "BM_LazyBatch/grow_exact", "BM_LazyBatch/grow_exact_mt4",
        "BM_LazyBatch/w256_exact_mt4_pin16",
        "BM_LazyBatch/w256_exact_mt4_pin8",
        "BM_LazyBatch/w256_full_mt4_pin8",
    ]
    for name in captures:
        frac = field(benchmarks, name, "parallel_fraction")
        if frac is None:
            continue
        cutoff = field(benchmarks, name, "final_cutoff")
        budget = field(benchmarks, name, "drain_budget")
        print(f"lazy {name.split('/')[-1]}: parallel_fraction={frac:.3f} "
              f"cutoff={cutoff:.0f} drain_budget={budget:.0f}")

    frac = field(benchmarks, "BM_LazyBatch/w256_exact_mt4_pin8",
                 "parallel_fraction")
    if frac is None:
        failures.append("missing BM_LazyBatch/w256_exact_mt4_pin8 results")
    else:
        print(f"lazy structural parallel fraction (exact, pinned cutoff 8): "
              f"{frac:.3f} (required >= {LAZY_MIN_PARALLEL_FRACTION})")
        if frac < LAZY_MIN_PARALLEL_FRACTION:
            failures.append(
                f"lazy parallel fraction regressed: {frac:.3f} < "
                f"{LAZY_MIN_PARALLEL_FRACTION}")

    serial = speedup("BM_LazyBatch/w256_exact", "BM_LazyBatch/w256_off")
    if serial is None:
        failures.append("missing BM_LazyBatch w256_exact / w256_off results")
    else:
        print(f"lazy batched-refill serial cost (exact vs off): "
              f"{serial:.2f}x (required >= {LAZY_SERIAL_MIN_RATIO}x)")
        if serial < LAZY_SERIAL_MIN_RATIO:
            failures.append(
                f"batched refill too expensive serially: {serial:.2f}x < "
                f"{LAZY_SERIAL_MIN_RATIO}x of w256_off")

    cpus = os.cpu_count() or 1
    best_mt = None
    for name in ("BM_LazyBatch/w256_exact_mt4", "BM_LazyBatch/w256_full_mt4"):
        s = speedup(name, "BM_LazyBatch/w256_off")
        if s is not None:
            print(f"lazy mt4 speedup ({name.split('/')[-1]} vs w256_off): "
                  f"{s:.2f}x")
            best_mt = s if best_mt is None else max(best_mt, s)
    if best_mt is not None:
        enforced = (os.environ.get("ADWISE_ENFORCE_MT_SPEEDUP") == "1"
                    and cpus >= MT_MIN_CPUS)
        if enforced:
            note = f"(required >= {LAZY_MT_MIN_SPEEDUP}x)"
        elif cpus < MT_MIN_CPUS:
            note = "(recorded only: < 4 cpus)"
        else:
            note = "(recorded only: set ADWISE_ENFORCE_MT_SPEEDUP=1 to gate)"
        print(f"lazy mt4 best speedup: {best_mt:.2f}x on {cpus} cpus {note}")
        if enforced and best_mt < LAZY_MT_MIN_SPEEDUP:
            failures.append(
                f"lazy mt4 speedup too low: {best_mt:.2f}x < "
                f"{LAZY_MT_MIN_SPEEDUP}x on {cpus} cpus")


def check_scoring(path, failures):
    """Scoring-core guardrails over bench_ablation_scoring JSON output."""
    with open(path) as f:
        benchmarks = json.load(f)["benchmarks"]

    def speedup(fast, slow):
        a = items_per_second(benchmarks, fast)
        b = items_per_second(benchmarks, slow)
        if a is None or b is None or b == 0:
            return None
        return a / b

    dense = speedup("BM_ScoreKernel/dense_k256_simd",
                    "BM_ScoreKernel/dense_k256_scalar")
    if dense is None:
        failures.append(
            "missing BM_ScoreKernel dense_k256_simd / dense_k256_scalar")
    else:
        print(f"dense scoring kernel (k256 simd vs scalar reference): "
              f"{dense:.2f}x (required >= {SCORING_DENSE_MIN_SPEEDUP}x)")
        if dense < SCORING_DENSE_MIN_SPEEDUP:
            failures.append(
                f"dense simd kernel speedup too low: {dense:.2f}x < "
                f"{SCORING_DENSE_MIN_SPEEDUP}x at k=256")

    for name in ("sparse_k32", "sparse_k100"):
        s = speedup(f"BM_ScoreKernel/{name}_simd",
                    f"BM_ScoreKernel/{name}_scalar")
        if s is None:
            failures.append(f"missing BM_ScoreKernel {name} simd/scalar pair")
            continue
        print(f"sparse scoring kernel ({name} simd vs scalar): {s:.2f}x "
              f"(required >= {SCORING_SPARSE_MIN_RATIO}x)")
        if s < SCORING_SPARSE_MIN_RATIO:
            failures.append(
                f"sparse simd kernel regressed: {name} {s:.2f}x < "
                f"{SCORING_SPARSE_MIN_RATIO}x of scalar")

    for fast, slow, label in [
        ("BM_ScoreKernel/dense_k32_simd", "BM_ScoreKernel/dense_k32_scalar",
         "dense kernel k32"),
        ("BM_AdwisePartition/e2e_simd", "BM_AdwisePartition/e2e_scalar",
         "end-to-end simd"),
    ]:
        s = speedup(fast, slow)
        if s is not None:
            print(f"{label}: {s:.2f}x")

    for name in ("full", "no_adaptive_bal", "no_degree_aware",
                 "no_clustering", "bare"):
        rep = field(benchmarks, f"BM_AdwiseAblation/{name}", "replication")
        imb = field(benchmarks, f"BM_AdwiseAblation/{name}", "imbalance")
        if rep is not None and imb is not None:
            print(f"ablation {name}: replication={rep:.3f} "
                  f"imbalance={imb:.3f}")


def check_io(path, failures):
    """Out-of-core stream guardrails over bench_ablation_io JSON output."""
    with open(path) as f:
        benchmarks = json.load(f)["benchmarks"]

    def speedup(fast, slow):
        a = items_per_second(benchmarks, fast)
        b = items_per_second(benchmarks, slow)
        if a is None or b is None or b == 0:
            return None
        return a / b

    ooc = speedup("BM_StreamDrain/binary_prefetch", "BM_StreamDrain/in_memory")
    if ooc is None:
        failures.append("missing BM_StreamDrain binary_prefetch / in_memory")
    else:
        print(f"out-of-core drain (binary_prefetch vs in_memory): {ooc:.2f}x "
              f"(required >= {IO_MIN_RATIO}x)")
        if ooc < IO_MIN_RATIO:
            failures.append(
                f"binary stream throughput regressed: {ooc:.2f}x < "
                f"{IO_MIN_RATIO}x of in-memory")

    ckpt = speedup("BM_HdrfPartitionCheckpointed/binary_prefetch",
                   "BM_HdrfPartition/binary_prefetch")
    if ckpt is None:
        failures.append(
            "missing BM_HdrfPartitionCheckpointed / BM_HdrfPartition")
    else:
        print(f"checkpoint tax (checkpointed vs plain hdrf drain): "
              f"{ckpt:.2f}x (required >= {CHECKPOINT_MIN_RATIO}x)")
        if ckpt < CHECKPOINT_MIN_RATIO:
            failures.append(
                f"checkpointing too expensive: {ckpt:.2f}x < "
                f"{CHECKPOINT_MIN_RATIO}x of the uncheckpointed drain")

    obs = speedup("BM_StreamDrain/binary_prefetch_obs",
                  "BM_StreamDrain/binary_prefetch")
    if obs is None:
        failures.append(
            "missing BM_StreamDrain binary_prefetch_obs / binary_prefetch")
    else:
        print(f"observability overhead (metrics sink attached vs idle): "
              f"{obs:.3f}x (required >= {OBS_MIN_RATIO}x)")
        if obs < OBS_MIN_RATIO:
            failures.append(
                f"observability drain overhead too high: {obs:.3f}x < "
                f"{OBS_MIN_RATIO}x of the idle (no-sink) drain")
    share = field(benchmarks, "BM_StreamDrain/binary_prefetch_obs",
                  "prefetch_wait_share")
    if share is not None:
        print(f"prefetch-wait share of obs drain wall time: {share:.3f}")

    for fast, slow, label in [
        ("BM_StreamDrain/binary", "BM_StreamDrain/in_memory",
         "binary drain, no prefetch"),
        ("BM_StreamDrain/text", "BM_StreamDrain/in_memory", "text drain"),
        ("BM_StreamDrain/binary_prefetch", "BM_StreamDrain/text",
         "binary-vs-text drain"),
        ("BM_HdrfPartition/binary_prefetch", "BM_HdrfPartition/in_memory",
         "hdrf out-of-core"),
        ("BM_Restream2/binary_prefetch", "BM_Restream2/in_memory",
         "2-pass restream out-of-core"),
    ]:
        s = speedup(fast, slow)
        if s is not None:
            print(f"{label}: {s:.2f}x")


def check_leaderboard(path, failures):
    """Quality-leaderboard guardrails over bench_leaderboard JSON output."""
    with open(path) as f:
        doc = json.load(f)
    rows = doc.get("rows", [])
    if not rows:
        failures.append(f"leaderboard {path} has no rows")
        return

    algorithms = sorted({r["algorithm"] for r in rows})
    datasets = sorted({r["dataset"] for r in rows})
    ks = sorted({r["k"] for r in rows})
    print(f"leaderboard coverage: {len(algorithms)} algorithms x "
          f"{len(datasets)} datasets x {len(ks)} k values "
          f"({len(rows)} rows)")
    if len(algorithms) < LEADERBOARD_MIN_ALGORITHMS:
        failures.append(
            f"leaderboard covers {len(algorithms)} algorithms < "
            f"{LEADERBOARD_MIN_ALGORITHMS}: {algorithms}")
    if len(datasets) < LEADERBOARD_MIN_DATASETS:
        failures.append(
            f"leaderboard covers {len(datasets)} datasets < "
            f"{LEADERBOARD_MIN_DATASETS}: {datasets}")
    if len(ks) < LEADERBOARD_MIN_KS:
        failures.append(
            f"leaderboard covers {len(ks)} k values < "
            f"{LEADERBOARD_MIN_KS}: {ks}")

    power_law_k32 = sorted({r["dataset"] for r in rows
                            if r.get("power_law") and r["k"] == 32})
    if not power_law_k32:
        failures.append("leaderboard has no power-law rows at k=32 "
                        "(the ADWISE quality gate needs them)")
    for dataset in power_law_k32:
        cell = [r for r in rows if r["dataset"] == dataset and r["k"] == 32]
        adwise = [r for r in cell if r["algorithm"] == "adwise"]
        rivals = [r for r in cell
                  if r.get("rival_class") == "streaming"
                  and r["load_balance"] <= LEADERBOARD_RIVAL_MAX_LOAD_BALANCE]
        if not adwise or not rivals:
            failures.append(
                f"leaderboard {dataset} k=32 misses adwise or a balanced "
                f"streaming rival")
            continue
        best = min(rivals, key=lambda r: r["replication"])
        ratio = adwise[0]["replication"] / best["replication"]
        print(f"leaderboard {dataset} k=32: adwise "
              f"rep={adwise[0]['replication']:.4f} vs best streaming "
              f"({best['algorithm']}) {best['replication']:.4f} -> "
              f"{ratio:.3f}x (required <= {LEADERBOARD_ADWISE_MAX_RATIO}x)")
        if ratio > LEADERBOARD_ADWISE_MAX_RATIO:
            failures.append(
                f"adwise replication on {dataset} k=32 is {ratio:.3f}x the "
                f"best streaming rival ({best['algorithm']}), over the "
                f"{LEADERBOARD_ADWISE_MAX_RATIO}x gate")

    for r in rows:
        if (r["algorithm"] == "adwise"
                and r["load_balance"] > LEADERBOARD_ADWISE_MAX_LOAD_BALANCE):
            failures.append(
                f"adwise load_balance {r['load_balance']:.3f} > "
                f"{LEADERBOARD_ADWISE_MAX_LOAD_BALANCE} on {r['dataset']} "
                f"k={r['k']}")


def main():
    args = sys.argv[1:]
    lazy_path = None
    if "--lazy" in args:
        i = args.index("--lazy")
        if i + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        lazy_path = args[i + 1]
        del args[i:i + 2]
    scoring_path = None
    if "--scoring" in args:
        i = args.index("--scoring")
        if i + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        scoring_path = args[i + 1]
        del args[i:i + 2]
    leaderboard_path = None
    if "--leaderboard" in args:
        i = args.index("--leaderboard")
        if i + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        leaderboard_path = args[i + 1]
        del args[i:i + 2]

    # --leaderboard is usable standalone (the leaderboard CI job has no
    # micro-bench JSON); every other mode still requires the positional
    # bench.json.
    if len(args) == 0 and leaderboard_path is not None:
        failures = []
        check_leaderboard(leaderboard_path, failures)
        if failures:
            for f in failures:
                print(f"GUARDRAIL FAILURE: {f}", file=sys.stderr)
            return 1
        print("bench guardrails OK")
        return 0
    if len(args) not in (1, 2):
        print(__doc__, file=sys.stderr)
        return 2
    with open(args[0]) as f:
        benchmarks = json.load(f)["benchmarks"]

    def speedup(fast, slow):
        a = items_per_second(benchmarks, fast)
        b = items_per_second(benchmarks, slow)
        if a is None or b is None or b == 0:
            return None
        return a / b

    failures = []

    sparse = speedup("BM_Adwise/w64_lazy", "BM_Adwise/w64_lazy_dense")
    if sparse is None:
        failures.append("missing w64_lazy / w64_lazy_dense results")
    else:
        print(f"sparse speedup (w64_lazy vs w64_lazy_dense): {sparse:.2f}x "
              f"(required >= {SPARSE_MIN_SPEEDUP}x)")
        if sparse < SPARSE_MIN_SPEEDUP:
            failures.append(
                f"sparse speedup regressed: {sparse:.2f}x < {SPARSE_MIN_SPEEDUP}x")

    cpus = os.cpu_count() or 1
    mt = speedup("BM_AdwiseEager/w256_eager_mt4", "BM_AdwiseEager/w256_eager")
    if mt is None:
        print("parallel speedup (w256_eager_mt4 vs w256_eager): not measured")
    else:
        enforced = (os.environ.get("ADWISE_ENFORCE_MT_SPEEDUP") == "1"
                    and cpus >= MT_MIN_CPUS)
        if enforced:
            note = f"(required >= {MT_MIN_SPEEDUP}x)"
        elif cpus < MT_MIN_CPUS:
            note = "(recorded only: < 4 cpus)"
        else:
            note = "(recorded only: set ADWISE_ENFORCE_MT_SPEEDUP=1 to gate)"
        print(f"parallel speedup (w256_eager_mt4 vs w256_eager): {mt:.2f}x on "
              f"{cpus} cpus {note}")
        if enforced and mt < MT_MIN_SPEEDUP:
            failures.append(
                f"parallel speedup too low: {mt:.2f}x < {MT_MIN_SPEEDUP}x on "
                f"{cpus} cpus")

    for fast, slow, label in [
        ("BM_Adwise/w64_lazy", "BM_Adwise/w64_lazy_linear", "heap-vs-linear w64"),
        ("BM_Adwise/w64_lazy_mt4", "BM_Adwise/w64_lazy", "parallel lazy w64"),
        ("BM_Adwise/w256_lazy_mt4", "BM_Adwise/w256_lazy", "parallel lazy w256"),
        ("BM_Adwise/w256_lazy", "BM_Adwise/w256_lazy_dense", "sparse w256"),
    ]:
        s = speedup(fast, slow)
        if s is not None:
            print(f"{label}: {s:.2f}x")

    if len(args) == 2:
        check_io(args[1], failures)
    if lazy_path is not None:
        check_lazy(lazy_path, failures)
    if scoring_path is not None:
        check_scoring(scoring_path, failures)
    if leaderboard_path is not None:
        check_leaderboard(leaderboard_path, failures)

    if failures:
        for f in failures:
            print(f"GUARDRAIL FAILURE: {f}", file=sys.stderr)
        return 1
    print("bench guardrails OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
